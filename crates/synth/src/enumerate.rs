//! Bounded exhaustive enumeration of well-formed candidate executions.
//!
//! # Architecture
//!
//! Enumeration is a two-stage pipeline:
//!
//! 1. A **work-unit producer** splits the space into units of the form
//!    *(thread-size partition, shape prefix)*: the partition fixes how many
//!    events each thread owns, and the prefix fixes the kind/location/
//!    annotation of the first few events. Producing units is cheap (a few
//!    thousand at most), so it runs up front on the calling thread.
//! 2. A pool of **workers** (scoped threads, one per available core) claims
//!    units from a shared atomic cursor. Each worker expands its unit's
//!    shape prefix to full shape vectors, then enumerates every choice of
//!    `rf`/`co`/dependencies/RMWs/transactions for each shape, assembling
//!    candidate [`Execution`]s *directly* — the per-edge constraints
//!    (reads-from links same-location write→read with one source per read,
//!    coherence is a total order per location, dependencies stay within a
//!    thread's program order) are enforced as the edges are chosen, so the
//!    full well-formedness re-check that the builder-based path pays per
//!    candidate is skipped (and asserted in debug builds).
//!
//! The callback is `Fn + Sync` and is invoked concurrently from all workers;
//! callers accumulate through atomics or a mutex. Per-worker visit counters
//! are summed into the return value.
//!
//! The original single-threaded generate-and-test loop is kept as
//! [`enumerate_exact_reference`]: it is the oracle the parallel pipeline is
//! tested against, and the "before" baseline the benchmark harness measures.
//!
//! Set `TM_SYNTH_THREADS` to pin the worker count (e.g. `1` to disable
//! parallelism).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use tm_exec::ir::{Delta, RelBase};
use tm_exec::{Annot, Event, Execution, ExecutionBuilder};
use tm_relation::Relation;

use crate::symmetry::{
    build_stab_elems, partition_sym, prefix_prunable, shape_stabilizer, PartitionSym, ReducedCount,
    StabElem, Symmetry,
};
use crate::SynthConfig;

/// How many leading events a work unit's shape prefix fixes. Deep enough to
/// produce thousands of units (good load balance), shallow enough that the
/// unit list stays small.
#[cfg(not(test))]
const PREFIX_DEPTH: usize = 3;
/// In unit tests the prefix is shallower, so the 3-event configurations the
/// tests use genuinely exercise the prefix-continuation path of
/// `expand_unit` (with the production depth they would degenerate to
/// complete shape vectors).
#[cfg(test)]
const PREFIX_DEPTH: usize = 2;

/// Enumerates every well-formed candidate execution with exactly `n` events
/// within the bounds of `config`, invoking `f` on each. Returns the number
/// of executions visited.
///
/// `f` is called concurrently from a pool of worker threads (see the module
/// docs); the *set* of executions visited is deterministic, the order is
/// not.
///
/// Enumeration is canonical up to the obvious symmetries: threads are
/// listed in non-increasing size order and locations are numbered in first-
/// use order. Remaining thread symmetry (between equal-sized threads) is
/// left to the caller to collapse with [`crate::canonical_signature`].
pub fn enumerate_exact(config: &SynthConfig, n: usize, f: impl Fn(&Execution) + Sync) -> usize {
    enumerate_exact_with_threads(config, n, worker_count(), f, &|| false)
}

/// [`enumerate_exact`] with a cooperative stop hook: `should_stop` is
/// polled in the work-unit claim loop and between shape vectors, so a
/// caller that found what it was looking for (see
/// [`crate::find_distinguishing`]) actually halts the sweep instead of
/// merely ignoring the remaining candidates. The returned count covers the
/// candidates visited before the stop.
pub fn enumerate_exact_until(
    config: &SynthConfig,
    n: usize,
    f: impl Fn(&Execution) + Sync,
    should_stop: impl Fn() -> bool + Sync,
) -> usize {
    enumerate_exact_with_threads(config, n, worker_count(), f, &should_stop)
}

/// [`enumerate_exact`] with an explicit worker count (tests use this to pin
/// the pool size without touching the process environment).
fn enumerate_exact_with_threads(
    config: &SynthConfig,
    n: usize,
    threads: usize,
    f: impl Fn(&Execution) + Sync,
    should_stop: &(impl Fn() -> bool + Sync),
) -> usize {
    if n == 0 {
        return 0;
    }
    let units = produce_units(config, n, Symmetry::Full);
    let threads = threads.min(units.len().max(1));
    if threads <= 1 {
        let mut count = 0;
        for unit in &units {
            if should_stop() {
                break;
            }
            count += expand_unit(config, unit, n, &f, should_stop);
        }
        return count;
    }
    let cursor = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = 0usize;
                loop {
                    if should_stop() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(i) else { break };
                    local += expand_unit(config, unit, n, &f, should_stop);
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// Enumerates executions of every size from 2 up to `config.max_events`.
pub fn enumerate_all(config: &SynthConfig, f: impl Fn(&Execution) + Sync) -> usize {
    let mut count = 0;
    for n in 2..=config.max_events {
        count += enumerate_exact(config, n, &f);
    }
    count
}

/// The original single-threaded generate-and-test enumerator, retained as
/// the oracle for the parallel pipeline (see `pipeline_matches_reference` in
/// this module's tests) and as the benchmark baseline. Every candidate is
/// assembled through [`ExecutionBuilder`] and re-checked for well-formedness
/// after the fact.
pub fn enumerate_exact_reference(
    config: &SynthConfig,
    n: usize,
    mut f: impl FnMut(&Execution),
) -> usize {
    let mut count = 0;
    if n == 0 {
        return 0;
    }
    for partition in compositions(n, config.max_threads) {
        let mut shapes: Vec<EventShape> = Vec::with_capacity(n);
        enumerate_shapes(config, n, &mut shapes, &mut |shapes| {
            enumerate_relations_reference(config, &partition, shapes, &mut |exec| {
                count += 1;
                f(exec);
            });
        });
    }
    count
}

/// [`enumerate_exact`], threading *edge deltas* instead of handing each
/// candidate out as an unrelated execution — the hot path of the
/// incremental axiom-IR sweep.
///
/// Each worker builds one sink with `make_sink` and walks its work units by
/// **mutating a single [`Execution`] in place**: between consecutive
/// candidates only the edges of the odometer dimensions that advanced are
/// removed/added, and the accompanying [`Delta`] records exactly those
/// edits (a *full* delta announces a brand-new execution at each new shape
/// vector). The walk orders dimensions so the cheapest-to-invalidate
/// families change fastest — transactions first, then RMWs, dependencies,
/// coherence, and reads-from last — maximising how much an incremental
/// evaluator ([`tm_exec::ir::IncrementalEval`]) can reuse across siblings.
///
/// The set of candidates visited is exactly that of [`enumerate_exact`]
/// (the order differs); the return value is the number visited.
pub fn enumerate_exact_incremental<S>(
    config: &SynthConfig,
    n: usize,
    make_sink: impl Fn() -> S + Sync,
) -> usize
where
    S: FnMut(&Execution, &Delta),
{
    enumerate_exact_incremental_with_threads(config, n, worker_count(), make_sink, &|| false)
}

/// [`enumerate_exact_incremental`] with a cooperative stop hook, polled in
/// the work-unit claim loop and between shape vectors (see
/// [`enumerate_exact_until`]).
pub fn enumerate_exact_incremental_until<S>(
    config: &SynthConfig,
    n: usize,
    make_sink: impl Fn() -> S + Sync,
    should_stop: impl Fn() -> bool + Sync,
) -> usize
where
    S: FnMut(&Execution, &Delta),
{
    enumerate_exact_incremental_with_threads(config, n, worker_count(), make_sink, &should_stop)
}

/// [`enumerate_exact_incremental`] with an explicit worker count.
fn enumerate_exact_incremental_with_threads<S>(
    config: &SynthConfig,
    n: usize,
    threads: usize,
    make_sink: impl Fn() -> S + Sync,
    should_stop: &(impl Fn() -> bool + Sync),
) -> usize
where
    S: FnMut(&Execution, &Delta),
{
    if n == 0 {
        return 0;
    }
    let units = produce_units(config, n, Symmetry::Full);
    let threads = threads.min(units.len().max(1));
    if threads <= 1 {
        let mut sink = make_sink();
        let mut count = 0;
        for unit in &units {
            if should_stop() {
                break;
            }
            count += expand_unit_incremental(config, unit, n, &mut sink, should_stop);
        }
        return count;
    }
    let cursor = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut sink = make_sink();
                let mut local = 0usize;
                loop {
                    if should_stop() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(i) else { break };
                    local += expand_unit_incremental(config, unit, n, &mut sink, should_stop);
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
    });
    total.load(Ordering::Relaxed)
}

/// [`expand_unit`] for the delta-threading pipeline.
fn expand_unit_incremental<S: FnMut(&Execution, &Delta)>(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    sink: &mut S,
    should_stop: &impl Fn() -> bool,
) -> usize {
    let mut count = 0;
    let mut shapes = unit.prefix.clone();
    enumerate_shapes(config, n, &mut shapes, &mut |shapes| {
        if should_stop() {
            return;
        }
        count += enumerate_relations_incremental(config, &unit.partition, shapes, sink);
    });
    count
}

/// Walks every relation choice of one shape vector by mutating a single
/// execution in place, odometer position *last-first* so the transaction
/// dimensions (laid out last) are the fastest-changing.
///
/// Full-mode adapter over [`enumerate_relations_sym`]: the candidate set
/// and the `apply_dim` edit sequence are exactly those of the historical
/// flat odometer.
fn enumerate_relations_incremental<S: FnMut(&Execution, &Delta)>(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
    sink: &mut S,
) -> usize {
    enumerate_relations_sym(
        config,
        partition,
        shapes,
        None,
        &mut |e: &Execution, d: &Delta, _orbit| sink(e, d),
    )
    .representatives
}

/// The unified in-place odometer walker behind both enumeration modes.
///
/// The flat odometer is structured as *outer* slow dimensions (rf, co,
/// dependencies, RMWs — positions `0..txn_at`) nesting an *inner*
/// transaction odometer (positions `txn_at..`), both last-position-fastest:
/// an inner overflow carries into an outer advance, reproducing the flat
/// walk's `apply_dim` sequence exactly.
///
/// With `sym: Some(_)` ([`Symmetry::Reduced`]) the walker visits only
/// lex-leader representatives (see the `symmetry` module docs): shapes that
/// are not canonical return immediately, and at each outer setting every
/// shape-stabilizer element is compared on the slow prefix once — an
/// element that already beats the candidate there rules out the *entire*
/// transaction subtree, which is skipped without touching the inner dims
/// (they are all zero at subtree entry, and stay so). Each emitted
/// representative carries its exact in-space orbit size
/// `|G| / |Stab(E)|`; budget-skipped and non-canonical candidates
/// accumulate their edits into the pending delta like budget skips always
/// have.
///
/// With `sym: None` ([`Symmetry::Full`]) the stabilizer machinery is empty
/// and every candidate is emitted with orbit 1.
fn enumerate_relations_sym<S: FnMut(&Execution, &Delta, u64)>(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
    sym: Option<&PartitionSym>,
    sink: &mut S,
) -> ReducedCount {
    let mut tally = ReducedCount::default();
    let (shape_perms, group_order) = match sym {
        None => (Vec::new(), 1),
        Some(sym) => match shape_stabilizer(sym, shapes) {
            // Not the lex-least shape of its orbit: every candidate in here
            // is represented under the canonical shape instead.
            None => {
                tally.shape_kills = 1;
                return tally;
            }
            Some(perms) => (perms, sym.order()),
        },
    };

    let choices = relation_choices(config, partition, shapes);
    let events = shape_events(shapes, &choices.thread_of);
    let layout = choices.odometer();
    if layout.dims.contains(&0) {
        return tally;
    }
    let stabs: Vec<StabElem> = build_stab_elems(&choices, &layout, &shape_perms);
    let txn_at = layout.txn_at;
    let total = layout.dims.len();
    let mut idx = vec![0usize; total];

    // Assemble the candidate at the all-zero index tuple.
    let mut exec = Execution::with_events(events);
    exec.po = choices.po.clone();
    for (i, opts) in choices.rf_options.iter().enumerate() {
        if let Some(w) = opts[0] {
            exec.rf.insert(w, choices.reads[i]);
        }
    }
    for opts in &choices.co_options {
        let order = &opts[0];
        for (k, &a) in order.iter().enumerate() {
            for &b in &order[k + 1..] {
                exec.co.insert(a, b);
            }
        }
    }
    for opts in &choices.txn_options {
        for interval in &opts[0] {
            for &a in interval {
                for &b in interval {
                    exec.stxn.insert(a, b);
                }
            }
        }
    }

    // The first candidate of a shape is announced with a full delta; edits
    // accumulate across skipped candidates until one is visited.
    let mut delta = Delta::everything();
    // Stabilizer elements still tied on the current slow prefix (their
    // suffix decides per candidate). Indices into `stabs`.
    let mut live: Vec<usize> = Vec::with_capacity(stabs.len());
    loop {
        // Outer setting: the transaction dims are all zero here (initially,
        // after an inner overflow wrapped them, or untouched by a skip).
        // Classify each stabilizer element on the slow prefix, which the
        // inner walk never changes.
        live.clear();
        let mut skip_subtree = false;
        for (si, h) in stabs.iter().enumerate() {
            match h.cmp_range(&idx, 0, txn_at) {
                // h·idx < idx already on the slow dims: no transaction
                // suffix can rescue this subtree — skip it whole.
                std::cmp::Ordering::Greater => {
                    skip_subtree = true;
                    break;
                }
                std::cmp::Ordering::Equal => live.push(si),
                // idx < h·idx on the slow dims: h is inert in this subtree.
                std::cmp::Ordering::Less => {}
            }
        }

        if skip_subtree {
            tally.subtree_kills += 1;
        } else {
            // Inner odometer over the transaction dims, last fastest.
            'inner: loop {
                let txn_count: usize = choices
                    .txn_options
                    .iter()
                    .enumerate()
                    .map(|(t, opts)| opts[idx[txn_at + t]].len())
                    .sum();
                if txn_count <= config.max_txns {
                    let mut stab_size = 1u64;
                    let mut canonical = true;
                    for &si in &live {
                        match stabs[si].cmp_range(&idx, txn_at, total) {
                            std::cmp::Ordering::Greater => {
                                canonical = false;
                                break;
                            }
                            std::cmp::Ordering::Equal => stab_size += 1,
                            std::cmp::Ordering::Less => {}
                        }
                    }
                    if canonical {
                        debug_assert!(
                            tm_exec::check_well_formed(&exec).is_ok(),
                            "incremental assembly must produce well-formed executions"
                        );
                        let orbit = group_order / stab_size;
                        tally.representatives += 1;
                        tally.weighted += orbit;
                        sink(&exec, &delta, orbit);
                        delta.clear();
                    } else {
                        tally.edge_kills += 1;
                    }
                }

                // Advance the inner dims; overflow falls through to the
                // outer advance with every inner dim back at zero.
                let mut p = total;
                loop {
                    if p == txn_at {
                        break 'inner;
                    }
                    p -= 1;
                    let old = idx[p];
                    idx[p] += 1;
                    if idx[p] < layout.dims[p] {
                        apply_dim(&choices, &layout, &mut exec, &mut delta, p, old, idx[p]);
                        continue 'inner;
                    }
                    idx[p] = 0;
                    apply_dim(&choices, &layout, &mut exec, &mut delta, p, old, 0);
                    // Carry into the next-slower inner dimension.
                }
            }
        }

        // Advance the slow dims, last fastest — the flat walk's carry out
        // of the transaction block.
        let mut p = txn_at;
        loop {
            if p == 0 {
                return tally;
            }
            p -= 1;
            let old = idx[p];
            idx[p] += 1;
            if idx[p] < layout.dims[p] {
                apply_dim(&choices, &layout, &mut exec, &mut delta, p, old, idx[p]);
                break;
            }
            idx[p] = 0;
            apply_dim(&choices, &layout, &mut exec, &mut delta, p, old, 0);
            // Carry into the next-slower dimension.
        }
    }
}

/// Applies the edge edits of moving odometer position `p` from choice
/// `old_i` to `new_i`, mutating `exec` and recording the edits in `delta`.
fn apply_dim(
    choices: &RelationChoices,
    layout: &OdometerLayout,
    exec: &mut Execution,
    delta: &mut Delta,
    p: usize,
    old_i: usize,
    new_i: usize,
) {
    if p >= layout.txn_at {
        let t = p - layout.txn_at;
        for interval in &choices.txn_options[t][old_i] {
            for &a in interval {
                for &b in interval {
                    exec.stxn.remove(a, b);
                    delta.remove_edge(RelBase::Stxn, a, b);
                }
            }
        }
        for interval in &choices.txn_options[t][new_i] {
            for &a in interval {
                for &b in interval {
                    exec.stxn.insert(a, b);
                    delta.add_edge(RelBase::Stxn, a, b);
                }
            }
        }
    } else if p >= layout.rmw_at {
        let (r, w) = choices.rmw_pairs[p - layout.rmw_at];
        if new_i == 1 {
            exec.rmw.insert(r, w);
            delta.add_edge(RelBase::Rmw, r, w);
        } else {
            exec.rmw.remove(r, w);
            delta.remove_edge(RelBase::Rmw, r, w);
        }
    } else if p >= layout.dep_at {
        let (r, e) = choices.dep_pairs[p - layout.dep_at];
        let (rel, base) = if choices.is_write[e] {
            (&mut exec.data, RelBase::Data)
        } else {
            (&mut exec.addr, RelBase::Addr)
        };
        if new_i == 1 {
            rel.insert(r, e);
            delta.add_edge(base, r, e);
        } else {
            rel.remove(r, e);
            delta.remove_edge(base, r, e);
        }
    } else if p >= layout.co_at {
        let i = p - layout.co_at;
        let old = &choices.co_options[i][old_i];
        for (k, &a) in old.iter().enumerate() {
            for &b in &old[k + 1..] {
                exec.co.remove(a, b);
                delta.remove_edge(RelBase::Co, a, b);
            }
        }
        let new = &choices.co_options[i][new_i];
        for (k, &a) in new.iter().enumerate() {
            for &b in &new[k + 1..] {
                exec.co.insert(a, b);
                delta.add_edge(RelBase::Co, a, b);
            }
        }
    } else {
        let i = p - layout.rf_at;
        let r = choices.reads[i];
        if let Some(w) = choices.rf_options[i][old_i] {
            exec.rf.remove(w, r);
            delta.remove_edge(RelBase::Rf, w, r);
        }
        if let Some(w) = choices.rf_options[i][new_i] {
            exec.rf.insert(w, r);
            delta.add_edge(RelBase::Rf, w, r);
        }
    }
}

/// Number of worker threads: `TM_SYNTH_THREADS` if set, else the number of
/// available cores.
fn worker_count() -> usize {
    if let Ok(v) = std::env::var("TM_SYNTH_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One unit of parallel work: a thread-size partition plus a fixed prefix of
/// event shapes.
///
/// Units are the checkpointing granule of resumable sweeps (`tm-sweep`):
/// [`WorkUnit::stable_id`] names a unit deterministically across processes
/// and machines, so a journal can record "this unit is done" and a restart
/// can skip it.
#[derive(Clone)]
pub struct WorkUnit {
    partition: Vec<usize>,
    prefix: Vec<EventShape>,
}

impl WorkUnit {
    /// A deterministic 64-bit identifier for this unit within the space of
    /// `config` at exactly `n` events: an FNV-1a hash of the configuration
    /// fingerprint, the event count, the thread-size partition and the
    /// shape prefix. Stable across processes, machines and re-orderings of
    /// the unit list — the key under which checkpointed sweeps journal unit
    /// completion.
    pub fn stable_id(&self, config: &SynthConfig, n: usize) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        h.u64(config.fingerprint()).usize(n);
        h.usize(self.partition.len());
        for &p in &self.partition {
            h.usize(p);
        }
        h.usize(self.prefix.len());
        for shape in &self.prefix {
            match *shape {
                EventShape::Read(loc, a) => {
                    h.byte(0).usize(loc as usize).byte(annot_bits(a));
                }
                EventShape::Write(loc, a) => {
                    h.byte(1).usize(loc as usize).byte(annot_bits(a));
                }
                EventShape::Fence(f) => {
                    h.byte(2).usize(f.index());
                }
            }
        }
        h.finish()
    }

    /// A short human-readable description (`threads=2+1 prefix=R0,W0,F`),
    /// for sweep progress reporting and quarantine summaries.
    pub fn label(&self) -> String {
        let partition: Vec<String> = self.partition.iter().map(|p| p.to_string()).collect();
        let prefix: Vec<String> = self
            .prefix
            .iter()
            .map(|s| match s {
                EventShape::Read(l, _) => format!("R{l}"),
                EventShape::Write(l, _) => format!("W{l}"),
                EventShape::Fence(_) => "F".to_string(),
            })
            .collect();
        format!(
            "threads={} prefix={}",
            partition.join("+"),
            prefix.join(",")
        )
    }

    /// Whether the unit can be refined further: a prefix shorter than the
    /// event bound `n` leaves at least one shape digit to extend.
    pub fn splittable(&self, n: usize) -> bool {
        self.prefix.len() < n
    }

    /// Refines this unit into its child subtrees by extending the shape
    /// prefix one digit, in exactly the order [`enumerate_shapes`] explores
    /// extensions — so the union of the children's candidate sets is the
    /// parent's, and a sweep that runs children instead of the parent visits
    /// the same executions in the same per-subtree order.
    ///
    /// Children carry their own [`WorkUnit::stable_id`]s (the id hashes the
    /// partition and the full prefix, so every child's id is derived from —
    /// and distinct from — the parent's input). Under [`Symmetry::Reduced`],
    /// children whose extended prefix is already non-canonical are dropped,
    /// mirroring [`work_units`]; every candidate they would cover is
    /// represented under a canonical sibling (the parent expansion would
    /// have shape-killed them too).
    ///
    /// Returns an empty vector when the unit is not [`splittable`]
    /// (its prefix already fixes all `n` events).
    ///
    /// [`splittable`]: WorkUnit::splittable
    pub fn split(&self, config: &SynthConfig, n: usize, symmetry: Symmetry) -> Vec<WorkUnit> {
        if !self.splittable(n) {
            return Vec::new();
        }
        let mut children = Vec::new();
        let mut prefix = self.prefix.clone();
        let target = prefix.len() + 1;
        enumerate_shapes(config, target, &mut prefix, &mut |child| {
            if symmetry.is_reduced() && prefix_prunable(&self.partition, child) {
                return;
            }
            children.push(WorkUnit {
                partition: self.partition.clone(),
                prefix: child.to_vec(),
            });
        });
        children
    }

    /// A deterministic cost estimate for expanding this unit at `n` events:
    /// the sum over the unit's complete shape vectors of the odometer
    /// subtree size (the product of every relation dimension — rf sources
    /// per read, coherence permutations per location, 2 per dependency/RMW
    /// pair, transaction interval sets per thread).
    ///
    /// This is an upper bound on the candidates a full-mode expansion
    /// visits (transaction-budget and symmetry kills only shrink it), and
    /// it is exact in full mode when `max_txns` never bites. It never
    /// materialises the choices themselves, so it is cheap relative to the
    /// expansion it estimates; saturating arithmetic keeps wide configs from
    /// overflowing. Always at least 1, so weight-proportional schedulers
    /// need no zero guard.
    pub fn weight(&self, config: &SynthConfig, n: usize) -> u64 {
        let mut total: u64 = 0;
        let mut shapes = self.prefix.clone();
        enumerate_shapes(config, n, &mut shapes, &mut |shapes| {
            total = total.saturating_add(shape_weight(config, &self.partition, shapes));
        });
        total.max(1)
    }
}

/// The odometer-subtree size of one complete shape vector: the product of
/// every relation dimension, computed from counts alone (no permutations or
/// interval sets are materialised). Mirrors [`RelationChoices::odometer`]
/// dimension by dimension.
fn shape_weight(config: &SynthConfig, partition: &[usize], shapes: &[EventShape]) -> u64 {
    let n = shapes.len();
    let mut thread_of = vec![0u32; n];
    {
        let mut next = 0usize;
        for (t, &size) in partition.iter().enumerate() {
            for slot in thread_of.iter_mut().skip(next).take(size) {
                *slot = t as u32;
            }
            next += size;
        }
    }
    let loc_of = |e: usize| match shapes[e] {
        EventShape::Read(l, _) | EventShape::Write(l, _) => Some(l),
        EventShape::Fence(_) => None,
    };
    let is_read = |e: usize| matches!(shapes[e], EventShape::Read(..));
    let is_write = |e: usize| matches!(shapes[e], EventShape::Write(..));

    let mut weight: u64 = 1;
    let mul = |w: &mut u64, f: u64| *w = w.saturating_mul(f.max(1));

    // rf: each read observes the initial state or one same-location write.
    for r in (0..n).filter(|&e| is_read(e)) {
        let sources = (0..n)
            .filter(|&w| is_write(w) && loc_of(w) == loc_of(r))
            .count() as u64;
        mul(&mut weight, 1 + sources);
    }
    // co: a permutation of the writes per used location.
    let mut locs: Vec<u32> = (0..n).filter_map(loc_of).collect();
    locs.sort_unstable();
    locs.dedup();
    for l in locs {
        let writes = (0..n)
            .filter(|&w| is_write(w) && loc_of(w) == Some(l))
            .count();
        mul(&mut weight, factorial(writes));
    }
    // dependencies: 2 per (read, po-later same-thread access) pair.
    if config.dependencies {
        for r in (0..n).filter(|&e| is_read(e)) {
            for e in r + 1..n {
                if thread_of[e] == thread_of[r] && loc_of(e).is_some() {
                    mul(&mut weight, 2);
                }
            }
        }
    }
    // rmw: 2 per adjacent same-location read/write pair on one thread.
    if config.rmws {
        for e in 0..n.saturating_sub(1) {
            if is_read(e)
                && is_write(e + 1)
                && thread_of[e] == thread_of[e + 1]
                && loc_of(e) == loc_of(e + 1)
            {
                mul(&mut weight, 2);
            }
        }
    }
    // transactions: disjoint contiguous interval sets per thread.
    if config.transactions {
        for &size in partition {
            mul(&mut weight, interval_set_count(size));
        }
    }
    weight
}

fn factorial(k: usize) -> u64 {
    (2..=k as u64).fold(1u64, |acc, f| acc.saturating_mul(f))
}

/// How many sets of disjoint contiguous non-empty intervals a path of `len`
/// events admits — the count [`interval_sets`] materialises.
fn interval_set_count(len: usize) -> u64 {
    // d[m] counts choices over the last m positions: skip one event, or
    // start an interval of any length (the recursion of `interval_sets`).
    let mut d = vec![0u64; len + 1];
    d[0] = 1;
    for m in 1..=len {
        let mut total = d[m - 1]; // position unclaimed
        for k in 1..=m {
            total = total.saturating_add(d[m - k]); // interval of length k
        }
        d[m] = total;
    }
    d[len]
}

/// Free-function form of [`WorkUnit::split`], the scheduler-facing entry
/// point: the child subtrees of `unit` one prefix digit deeper.
pub fn split_unit(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    symmetry: Symmetry,
) -> Vec<WorkUnit> {
    unit.split(config, n, symmetry)
}

/// Free-function form of [`WorkUnit::weight`]: the odometer-subtree upper
/// bound a weight-ordered scheduler dispatches by.
pub fn unit_weight(config: &SynthConfig, unit: &WorkUnit, n: usize) -> u64 {
    unit.weight(config, n)
}

/// The annotation's stable bit pattern, shared by unit ids and the config
/// fingerprint.
pub(crate) fn annot_bits(a: Annot) -> u8 {
    u8::from(a.acq) | u8::from(a.rel) << 1 | u8::from(a.sc) << 2 | u8::from(a.atomic) << 3
}

/// The partition × shape-prefix work units of the space of `config` at
/// exactly `n` events, in deterministic order — the checkpointing granules
/// a resumable sweep journals, shards and retries individually. Expanding a
/// unit with [`enumerate_unit_incremental`] visits exactly the candidates
/// the whole-space pipelines visit for it.
///
/// In [`Symmetry::Reduced`] mode units whose shape prefix is already
/// non-canonical are dropped up front (their every candidate is represented
/// elsewhere); the surviving units keep the ids they have in the full list,
/// but the two modes' unit *sets* differ — sweep journals fingerprint the
/// mode so they never mix.
pub fn work_units(config: &SynthConfig, n: usize, symmetry: Symmetry) -> Vec<WorkUnit> {
    produce_units(config, n, symmetry)
}

/// Expands one work unit through the delta-threading enumeration on the
/// calling thread: `sink` sees every `(execution, delta)` pair of the
/// unit's subspace (a full delta opens each new shape vector, so a fresh
/// stateful checker per unit is sound). `should_stop` is polled between
/// shape vectors — a deadline or budget hook halts the unit cooperatively,
/// in which case the partial visit count must not be banked as complete.
/// Returns the number of candidates visited.
pub fn enumerate_unit_incremental<S: FnMut(&Execution, &Delta)>(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    sink: &mut S,
    should_stop: impl Fn() -> bool,
) -> usize {
    expand_unit_incremental(config, unit, n, sink, &should_stop)
}

/// [`enumerate_unit_incremental`] in [`Symmetry::Reduced`] mode: the sink
/// sees one canonical representative per isomorphism class of the unit's
/// subspace, each with its exact in-space orbit size (units come from
/// [`work_units`] with `Symmetry::Reduced`). The returned tally's
/// `weighted` field equals the candidate count a full-mode expansion of
/// the same subspace visits.
pub fn enumerate_unit_reduced<S: FnMut(&Execution, &Delta, u64)>(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    sink: &mut S,
    should_stop: impl Fn() -> bool,
) -> ReducedCount {
    expand_unit_reduced(config, unit, n, sink, &should_stop)
}

/// [`expand_unit_incremental`] in reduced mode: one [`PartitionSym`] per
/// unit, one lex-leader check per shape, stabilizer-filtered odometers.
fn expand_unit_reduced<S: FnMut(&Execution, &Delta, u64)>(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    sink: &mut S,
    should_stop: &impl Fn() -> bool,
) -> ReducedCount {
    let sym = partition_sym(&unit.partition);
    let mut tally = ReducedCount::default();
    let mut shapes = unit.prefix.clone();
    enumerate_shapes(config, n, &mut shapes, &mut |shapes| {
        if should_stop() {
            return;
        }
        tally.add(enumerate_relations_sym(
            config,
            &unit.partition,
            shapes,
            Some(&sym),
            sink,
        ));
    });
    tally
}

/// [`enumerate_exact`] under symmetry reduction: `f` sees one canonical
/// representative per thread/location-renaming class with its exact orbit
/// size; `Σ orbit` over the calls (the returned `weighted`) equals
/// [`enumerate_exact`]'s visit count.
pub fn enumerate_reduced(
    config: &SynthConfig,
    n: usize,
    f: impl Fn(&Execution, u64) + Sync,
) -> ReducedCount {
    enumerate_reduced_incremental_with_threads(
        config,
        n,
        worker_count(),
        || |exec: &Execution, _delta: &Delta, orbit: u64| f(exec, orbit),
        &|| false,
    )
}

/// [`enumerate_reduced`] with a cooperative stop hook (see
/// [`enumerate_exact_until`]).
pub fn enumerate_reduced_until(
    config: &SynthConfig,
    n: usize,
    f: impl Fn(&Execution, u64) + Sync,
    should_stop: impl Fn() -> bool + Sync,
) -> ReducedCount {
    enumerate_reduced_incremental_with_threads(
        config,
        n,
        worker_count(),
        || |exec: &Execution, _delta: &Delta, orbit: u64| f(exec, orbit),
        &should_stop,
    )
}

/// [`enumerate_exact_incremental`] under symmetry reduction: each worker's
/// sink sees `(execution, delta, orbit)` for canonical representatives
/// only, with the same delta-threading contract as the full pipeline.
pub fn enumerate_reduced_incremental<S>(
    config: &SynthConfig,
    n: usize,
    make_sink: impl Fn() -> S + Sync,
) -> ReducedCount
where
    S: FnMut(&Execution, &Delta, u64),
{
    enumerate_reduced_incremental_with_threads(config, n, worker_count(), make_sink, &|| false)
}

/// [`enumerate_reduced_incremental`] with a cooperative stop hook.
pub fn enumerate_reduced_incremental_until<S>(
    config: &SynthConfig,
    n: usize,
    make_sink: impl Fn() -> S + Sync,
    should_stop: impl Fn() -> bool + Sync,
) -> ReducedCount
where
    S: FnMut(&Execution, &Delta, u64),
{
    enumerate_reduced_incremental_with_threads(config, n, worker_count(), make_sink, &should_stop)
}

/// The reduced-mode worker pool (mirrors
/// `enumerate_exact_incremental_with_threads`).
fn enumerate_reduced_incremental_with_threads<S>(
    config: &SynthConfig,
    n: usize,
    threads: usize,
    make_sink: impl Fn() -> S + Sync,
    should_stop: &(impl Fn() -> bool + Sync),
) -> ReducedCount
where
    S: FnMut(&Execution, &Delta, u64),
{
    if n == 0 {
        return ReducedCount::default();
    }
    let units = produce_units(config, n, Symmetry::Reduced);
    let threads = threads.min(units.len().max(1));
    if threads <= 1 {
        let mut sink = make_sink();
        let mut tally = ReducedCount::default();
        for unit in &units {
            if should_stop() {
                break;
            }
            tally.add(expand_unit_reduced(config, unit, n, &mut sink, should_stop));
        }
        return tally;
    }
    let cursor = AtomicUsize::new(0);
    let representatives = AtomicUsize::new(0);
    let weighted = AtomicU64::new(0);
    let shape_kills = AtomicU64::new(0);
    let subtree_kills = AtomicU64::new(0);
    let edge_kills = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut sink = make_sink();
                let mut local = ReducedCount::default();
                loop {
                    if should_stop() {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(i) else { break };
                    local.add(expand_unit_reduced(config, unit, n, &mut sink, should_stop));
                }
                representatives.fetch_add(local.representatives, Ordering::Relaxed);
                weighted.fetch_add(local.weighted, Ordering::Relaxed);
                shape_kills.fetch_add(local.shape_kills, Ordering::Relaxed);
                subtree_kills.fetch_add(local.subtree_kills, Ordering::Relaxed);
                edge_kills.fetch_add(local.edge_kills, Ordering::Relaxed);
            });
        }
    });
    ReducedCount {
        representatives: representatives.load(Ordering::Relaxed),
        weighted: weighted.load(Ordering::Relaxed),
        shape_kills: shape_kills.load(Ordering::Relaxed),
        subtree_kills: subtree_kills.load(Ordering::Relaxed),
        edge_kills: edge_kills.load(Ordering::Relaxed),
    }
}

/// Stage 1 of the pipeline: the partition × shape-prefix work units.
fn produce_units(config: &SynthConfig, n: usize, symmetry: Symmetry) -> Vec<WorkUnit> {
    let depth = n.min(PREFIX_DEPTH);
    let mut units = Vec::new();
    for partition in compositions(n, config.max_threads) {
        let mut prefix: Vec<EventShape> = Vec::with_capacity(depth);
        enumerate_shapes(config, depth, &mut prefix, &mut |prefix| {
            if symmetry.is_reduced() && prefix_prunable(&partition, prefix) {
                return;
            }
            units.push(WorkUnit {
                partition: partition.clone(),
                prefix: prefix.to_vec(),
            });
        });
    }
    units
}

/// Stage 2: expands a unit's shape prefix to full shape vectors and
/// enumerates all relation choices for each. Returns how many executions
/// were visited.
fn expand_unit(
    config: &SynthConfig,
    unit: &WorkUnit,
    n: usize,
    f: &(impl Fn(&Execution) + Sync),
    should_stop: &impl Fn() -> bool,
) -> usize {
    let mut count = 0;
    let mut shapes = unit.prefix.clone();
    enumerate_shapes(config, n, &mut shapes, &mut |shapes| {
        if should_stop() {
            return;
        }
        count += enumerate_relations(config, &unit.partition, shapes, f);
    });
    count
}

/// The non-increasing compositions of `n` into at most `max_parts` parts.
fn compositions(n: usize, max_parts: usize) -> Vec<Vec<usize>> {
    fn go(
        remaining: usize,
        max_part: usize,
        parts_left: usize,
        prefix: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if remaining == 0 {
            out.push(prefix.clone());
            return;
        }
        if parts_left == 0 {
            return;
        }
        for part in (1..=remaining.min(max_part)).rev() {
            prefix.push(part);
            go(remaining - part, part, parts_left - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go(n, n, max_parts, &mut Vec::new(), &mut out);
    out
}

/// The per-event choice: what the event is, where it accesses, and how it is
/// annotated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventShape {
    Read(u32, Annot),
    Write(u32, Annot),
    Fence(tm_exec::Fence),
}

/// Extends `shapes` with every choice for the next event until `target`
/// events are shaped, invoking `f` on each complete vector. Locations are
/// canonicalised: a new event may use any location already used, or the next
/// fresh one.
fn enumerate_shapes(
    config: &SynthConfig,
    target: usize,
    shapes: &mut Vec<EventShape>,
    f: &mut impl FnMut(&[EventShape]),
) {
    if shapes.len() == target {
        f(shapes);
        return;
    }
    let used = shapes
        .iter()
        .filter_map(|s| match s {
            EventShape::Read(l, _) | EventShape::Write(l, _) => Some(*l + 1),
            EventShape::Fence(_) => None,
        })
        .max()
        .unwrap_or(0);
    let loc_limit = (used + 1).min(config.max_locs as u32);
    for loc in 0..loc_limit {
        for &annot in &config.read_annots {
            shapes.push(EventShape::Read(loc, annot));
            enumerate_shapes(config, target, shapes, f);
            shapes.pop();
        }
        for &annot in &config.write_annots {
            shapes.push(EventShape::Write(loc, annot));
            enumerate_shapes(config, target, shapes, f);
            shapes.pop();
        }
    }
    for &fence in &config.fences {
        shapes.push(EventShape::Fence(fence));
        enumerate_shapes(config, target, shapes, f);
        shapes.pop();
    }
}

/// Iterates the cartesian product of `0..dims[i]` index tuples.
fn for_each_product(dims: &[usize], mut f: impl FnMut(&[usize])) {
    if dims.contains(&0) {
        return;
    }
    let mut idx = vec![0usize; dims.len()];
    loop {
        f(&idx);
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == dims.len() {
                return;
            }
            idx[i] += 1;
            if idx[i] < dims[i] {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

pub(crate) fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// All ways of choosing disjoint contiguous non-empty intervals (transactions)
/// over a thread with events `ids` (in program order). Each choice is a list
/// of intervals, each a list of event ids.
fn interval_sets(ids: &[usize]) -> Vec<Vec<Vec<usize>>> {
    // Dynamic programming over positions: at each position either skip one
    // event or start an interval of some length.
    fn go(ids: &[usize], from: usize, acc: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if from == ids.len() {
            out.push(acc.clone());
            return;
        }
        // Event `from` is not in any transaction.
        go(ids, from + 1, acc, out);
        // Or an interval starts at `from`.
        for end in from + 1..=ids.len() {
            acc.push(ids[from..end].to_vec());
            go(ids, end, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    go(ids, 0, &mut Vec::new(), &mut out);
    out
}

/// The relation choices shared by every product of one shape vector.
pub(crate) struct RelationChoices {
    pub(crate) thread_of: Vec<u32>,
    pub(crate) thread_blocks: Vec<Vec<usize>>,
    /// Program order: fixed by the partition alone.
    pub(crate) po: Relation,
    pub(crate) reads: Vec<usize>,
    /// The used locations, sorted — `co_options[i]` orders the writes to
    /// `locs[i]`.
    pub(crate) locs: Vec<u32>,
    pub(crate) rf_options: Vec<Vec<Option<usize>>>,
    pub(crate) co_options: Vec<Vec<Vec<usize>>>,
    pub(crate) dep_pairs: Vec<(usize, usize)>,
    pub(crate) rmw_pairs: Vec<(usize, usize)>,
    pub(crate) txn_options: Vec<Vec<Vec<Vec<usize>>>>,
    pub(crate) is_write: Vec<bool>,
}

fn relation_choices(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
) -> RelationChoices {
    let n = shapes.len();
    // Event ids are grouped by thread: thread t owns a contiguous block.
    let mut thread_of = vec![0u32; n];
    let mut thread_blocks: Vec<Vec<usize>> = Vec::new();
    let mut po = Relation::new(n);
    {
        let mut next = 0usize;
        for (t, &size) in partition.iter().enumerate() {
            let block: Vec<usize> = (next..next + size).collect();
            for &e in &block {
                thread_of[e] = t as u32;
                for b in e + 1..next + size {
                    po.insert(e, b);
                }
            }
            thread_blocks.push(block);
            next += size;
        }
    }

    let loc_of = |e: usize| match shapes[e] {
        EventShape::Read(l, _) | EventShape::Write(l, _) => Some(l),
        EventShape::Fence(_) => None,
    };
    let is_read = |e: usize| matches!(shapes[e], EventShape::Read(..));
    let is_write = |e: usize| matches!(shapes[e], EventShape::Write(..));

    let reads: Vec<usize> = (0..n).filter(|&e| is_read(e)).collect();
    let locs: Vec<u32> = {
        let mut l: Vec<u32> = (0..n).filter_map(loc_of).collect();
        l.sort_unstable();
        l.dedup();
        l
    };

    // rf choices: each read observes the initial state or one same-location
    // write — reads-from well-formedness (write→read, same location, one
    // source per read) holds as the edge is chosen.
    let rf_options: Vec<Vec<Option<usize>>> = reads
        .iter()
        .map(|&r| {
            let mut opts: Vec<Option<usize>> = vec![None];
            opts.extend(
                (0..n)
                    .filter(|&w| is_write(w) && loc_of(w) == loc_of(r))
                    .map(Some),
            );
            opts
        })
        .collect();

    // co choices: a permutation of the writes to each location — coherence
    // is a strict total order per location by construction.
    let co_options: Vec<Vec<Vec<usize>>> = locs
        .iter()
        .map(|&l| {
            let writes: Vec<usize> = (0..n)
                .filter(|&w| is_write(w) && loc_of(w) == Some(l))
                .collect();
            permutations(&writes)
        })
        .collect();

    // dependency choices: for each (read, po-later access on the same
    // thread) pair, either no dependency or one (data to writes, address to
    // reads).
    let dep_pairs: Vec<(usize, usize)> = if config.dependencies {
        let mut pairs = Vec::new();
        for &r in &reads {
            for e in r + 1..n {
                if thread_of[e] == thread_of[r] && loc_of(e).is_some() {
                    pairs.push((r, e));
                }
            }
        }
        pairs
    } else {
        Vec::new()
    };

    // rmw choices: adjacent same-location read/write pairs on one thread.
    let rmw_pairs: Vec<(usize, usize)> = if config.rmws {
        (0..n.saturating_sub(1))
            .filter(|&e| {
                is_read(e)
                    && is_write(e + 1)
                    && thread_of[e] == thread_of[e + 1]
                    && loc_of(e) == loc_of(e + 1)
            })
            .map(|e| (e, e + 1))
            .collect()
    } else {
        Vec::new()
    };

    // transaction choices: per thread, a set of disjoint contiguous
    // intervals.
    let txn_options: Vec<Vec<Vec<Vec<usize>>>> = if config.transactions {
        thread_blocks.iter().map(|b| interval_sets(b)).collect()
    } else {
        thread_blocks.iter().map(|_| vec![vec![]]).collect()
    };

    RelationChoices {
        thread_of,
        thread_blocks,
        po,
        reads,
        locs,
        rf_options,
        co_options,
        dep_pairs,
        rmw_pairs,
        txn_options,
        is_write: (0..n).map(is_write).collect(),
    }
}

/// The odometer layout shared by the direct and reference enumerators: the
/// dimension vector and the offset of each choice family within an index
/// tuple.
pub(crate) struct OdometerLayout {
    pub(crate) dims: Vec<usize>,
    pub(crate) rf_at: usize,
    pub(crate) co_at: usize,
    pub(crate) dep_at: usize,
    pub(crate) rmw_at: usize,
    pub(crate) txn_at: usize,
}

impl RelationChoices {
    /// The odometer dimensions: rf per read, co per location, 2 per dep
    /// pair, 2 per rmw pair, txn set per thread.
    fn odometer(&self) -> OdometerLayout {
        let mut dims: Vec<usize> = Vec::new();
        dims.extend(self.rf_options.iter().map(Vec::len));
        dims.extend(self.co_options.iter().map(Vec::len));
        dims.extend(std::iter::repeat_n(2, self.dep_pairs.len()));
        dims.extend(std::iter::repeat_n(2, self.rmw_pairs.len()));
        dims.extend(self.txn_options.iter().map(Vec::len));
        let rf_at = 0;
        let co_at = rf_at + self.rf_options.len();
        let dep_at = co_at + self.co_options.len();
        let rmw_at = dep_at + self.dep_pairs.len();
        let txn_at = rmw_at + self.rmw_pairs.len();
        OdometerLayout {
            dims,
            rf_at,
            co_at,
            dep_at,
            rmw_at,
            txn_at,
        }
    }
}

fn shape_events(shapes: &[EventShape], thread_of: &[u32]) -> Vec<Event> {
    shapes
        .iter()
        .enumerate()
        .map(|(e, shape)| match *shape {
            EventShape::Read(l, a) => Event::read(thread_of[e], l).with_annot(a),
            EventShape::Write(l, a) => Event::write(thread_of[e], l).with_annot(a),
            EventShape::Fence(k) => Event::fence(thread_of[e], k),
        })
        .collect()
}

/// Enumerates every relation choice for one complete shape vector,
/// assembling each candidate [`Execution`] directly from the chosen edges.
///
/// Well-formedness is enforced *as edges are chosen* (see the comments in
/// [`relation_choices`]): program order is fixed per partition, every `rf`
/// option pairs a read with a same-location write, every `co` option is a
/// total order of the writes to one location, dependency/RMW pairs stay
/// within one thread's program order, and transactions are contiguous
/// per-thread intervals. The builder-based reference path re-validates all
/// of this per candidate; here it is a debug assertion.
fn enumerate_relations(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
    f: &(impl Fn(&Execution) + Sync),
) -> usize {
    let choices = relation_choices(config, partition, shapes);
    let events = shape_events(shapes, &choices.thread_of);
    let OdometerLayout {
        dims,
        rf_at,
        co_at,
        dep_at,
        rmw_at,
        txn_at,
    } = choices.odometer();

    let mut count = 0usize;
    for_each_product(&dims, |idx| {
        // Early rejection: the transaction budget depends only on the chosen
        // interval sets, so check it before assembling anything.
        let txn_count: usize = choices
            .txn_options
            .iter()
            .enumerate()
            .map(|(t, opts)| opts[idx[txn_at + t]].len())
            .sum();
        if txn_count > config.max_txns {
            return;
        }

        let mut exec = Execution::with_events(events.clone());
        exec.po = choices.po.clone();
        for (i, &r) in choices.reads.iter().enumerate() {
            if let Some(w) = choices.rf_options[i][idx[rf_at + i]] {
                exec.rf.insert(w, r);
            }
        }
        for (i, options) in choices.co_options.iter().enumerate() {
            let order = &options[idx[co_at + i]];
            for (k, &a) in order.iter().enumerate() {
                for &b in &order[k + 1..] {
                    exec.co.insert(a, b);
                }
            }
        }
        for (i, &(r, e)) in choices.dep_pairs.iter().enumerate() {
            if idx[dep_at + i] == 1 {
                if choices.is_write[e] {
                    exec.data.insert(r, e);
                } else {
                    exec.addr.insert(r, e);
                }
            }
        }
        for (i, &(r, w)) in choices.rmw_pairs.iter().enumerate() {
            if idx[rmw_at + i] == 1 {
                exec.rmw.insert(r, w);
            }
        }
        for (t, _) in choices.thread_blocks.iter().enumerate() {
            for interval in &choices.txn_options[t][idx[txn_at + t]] {
                for &a in interval {
                    for &b in interval {
                        exec.stxn.insert(a, b);
                    }
                }
            }
        }
        debug_assert!(
            tm_exec::check_well_formed(&exec).is_ok(),
            "direct assembly must produce well-formed executions"
        );
        count += 1;
        f(&exec);
    });
    count
}

/// The builder-based generate-and-test loop behind
/// [`enumerate_exact_reference`].
fn enumerate_relations_reference(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
    f: &mut impl FnMut(&Execution),
) {
    let choices = relation_choices(config, partition, shapes);
    let events = shape_events(shapes, &choices.thread_of);
    let OdometerLayout {
        dims,
        rf_at,
        co_at,
        dep_at,
        rmw_at,
        txn_at,
    } = choices.odometer();

    for_each_product(&dims, |idx| {
        let mut b = ExecutionBuilder::new();
        for &event in &events {
            b.push(event);
        }
        for (i, &r) in choices.reads.iter().enumerate() {
            if let Some(w) = choices.rf_options[i][idx[rf_at + i]] {
                b.rf(w, r);
            }
        }
        for (i, options) in choices.co_options.iter().enumerate() {
            b.co_order(&options[idx[co_at + i]]);
        }
        for (i, &(r, e)) in choices.dep_pairs.iter().enumerate() {
            if idx[dep_at + i] == 1 {
                if choices.is_write[e] {
                    b.data(r, e);
                } else {
                    b.addr(r, e);
                }
            }
        }
        for (i, &(r, w)) in choices.rmw_pairs.iter().enumerate() {
            if idx[rmw_at + i] == 1 {
                b.rmw(r, w);
            }
        }
        let mut txn_count = 0usize;
        for (t, _) in choices.thread_blocks.iter().enumerate() {
            for interval in &choices.txn_options[t][idx[txn_at + t]] {
                b.txn(interval);
                txn_count += 1;
            }
        }
        if txn_count > config.max_txns {
            return;
        }
        if let Ok(exec) = b.build() {
            f(&exec);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashSet};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Mutex;
    use tm_exec::Fence;

    fn tiny_config() -> SynthConfig {
        SynthConfig {
            max_events: 2,
            max_threads: 2,
            max_locs: 2,
            fences: vec![],
            read_annots: vec![Annot::PLAIN],
            write_annots: vec![Annot::PLAIN],
            dependencies: false,
            rmws: false,
            transactions: false,
            max_txns: 0,
        }
    }

    #[test]
    fn compositions_are_non_increasing_and_bounded() {
        let cs = compositions(4, 3);
        assert!(cs.contains(&vec![2, 2]));
        assert!(cs.contains(&vec![2, 1, 1]));
        assert!(!cs.contains(&vec![1, 1, 1, 1])); // four parts > max
        for c in &cs {
            assert_eq!(c.iter().sum::<usize>(), 4);
            assert!(c.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn product_iteration_covers_every_tuple() {
        let mut seen = Vec::new();
        for_each_product(&[2, 3], |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 2]));
        // Empty dimension produces nothing.
        let mut count = 0;
        for_each_product(&[2, 0], |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn interval_sets_enumerate_disjoint_contiguous_txns() {
        let sets = interval_sets(&[10, 11, 12]);
        // Must include: none, each singleton, each pair, the triple, and
        // combinations like [10],[12].
        assert!(sets.contains(&vec![]));
        assert!(sets.contains(&vec![vec![10, 11, 12]]));
        assert!(sets.contains(&vec![vec![10], vec![12]]));
        assert!(sets.contains(&vec![vec![10], vec![11], vec![12]]));
        // All intervals are contiguous and disjoint.
        for set in &sets {
            let mut all: Vec<usize> = set.iter().flatten().copied().collect();
            let len_before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), len_before);
        }
    }

    #[test]
    fn two_event_enumeration_is_small_and_well_formed() {
        let cfg = tiny_config();
        let count = AtomicUsize::new(0);
        let total = enumerate_exact(&cfg, 2, |exec| {
            assert_eq!(exec.len(), 2);
            assert!(tm_exec::check_well_formed(exec).is_ok());
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), total);
        assert!(total > 0);
        // Rough sanity bound: 2 events, ≤2 locations, R/W only.
        assert!(total < 200, "unexpectedly large: {total}");
    }

    #[test]
    fn transactions_increase_the_space() {
        let without = enumerate_exact(&tiny_config(), 2, |_| {});
        let mut cfg = tiny_config();
        cfg.transactions = true;
        cfg.max_txns = 2;
        let with = enumerate_exact(&cfg, 2, |_| {});
        assert!(with > without);
    }

    #[test]
    fn fences_appear_when_enabled() {
        let mut cfg = tiny_config();
        cfg.fences = vec![Fence::MFence];
        let saw_fence = AtomicBool::new(false);
        enumerate_exact(&cfg, 2, |exec| {
            if !exec.fences().is_empty() {
                saw_fence.store(true, Ordering::Relaxed);
            }
        });
        assert!(saw_fence.load(Ordering::Relaxed));
    }

    #[test]
    fn enumerate_all_sums_sizes() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        let two = enumerate_exact(&cfg, 2, |_| {});
        let three = enumerate_exact(&cfg, 3, |_| {});
        let all = enumerate_all(&cfg, |_| {});
        assert_eq!(all, two + three);
    }

    #[test]
    fn dependencies_and_rmws_appear_when_enabled() {
        let mut cfg = tiny_config();
        cfg.dependencies = true;
        cfg.rmws = true;
        let saw_dep = AtomicBool::new(false);
        let saw_rmw = AtomicBool::new(false);
        enumerate_exact(&cfg, 2, |exec| {
            if !exec.data.is_empty() || !exec.addr.is_empty() {
                saw_dep.store(true, Ordering::Relaxed);
            }
            if !exec.rmw.is_empty() {
                saw_rmw.store(true, Ordering::Relaxed);
            }
        });
        assert!(saw_dep.load(Ordering::Relaxed));
        assert!(saw_rmw.load(Ordering::Relaxed));
    }

    /// The parallel direct-assembly pipeline must visit exactly the multiset
    /// of executions the builder-based reference enumerator visits.
    #[test]
    fn pipeline_matches_reference() {
        let configs = [
            {
                let mut cfg = tiny_config();
                cfg.max_events = 3;
                cfg.transactions = true;
                cfg.max_txns = 2;
                cfg.rmws = true;
                cfg
            },
            {
                let mut cfg = tiny_config();
                cfg.max_events = 3;
                cfg.fences = vec![Fence::Sync];
                cfg.dependencies = true;
                cfg
            },
        ];
        for cfg in configs {
            for n in 2..=cfg.max_events {
                let mut reference: BTreeMap<String, usize> = BTreeMap::new();
                let ref_count = enumerate_exact_reference(&cfg, n, |exec| {
                    *reference.entry(exec.signature()).or_default() += 1;
                });
                let parallel: Mutex<BTreeMap<String, usize>> = Mutex::new(BTreeMap::new());
                let par_count = enumerate_exact(&cfg, n, |exec| {
                    *parallel
                        .lock()
                        .unwrap()
                        .entry(exec.signature())
                        .or_default() += 1;
                });
                assert_eq!(ref_count, par_count, "count mismatch at n={n}");
                assert_eq!(
                    reference,
                    parallel.into_inner().unwrap(),
                    "signature multiset mismatch at n={n}"
                );
            }
        }
    }

    /// The delta-threading pipeline must visit exactly the multiset of
    /// executions the from-scratch pipeline visits.
    #[test]
    fn incremental_pipeline_matches_exact() {
        let configs = [
            {
                let mut cfg = tiny_config();
                cfg.max_events = 3;
                cfg.transactions = true;
                cfg.max_txns = 2;
                cfg.rmws = true;
                cfg
            },
            {
                let mut cfg = tiny_config();
                cfg.max_events = 3;
                cfg.fences = vec![Fence::Sync];
                cfg.dependencies = true;
                cfg
            },
        ];
        for cfg in configs {
            for n in 2..=cfg.max_events {
                let exact: Mutex<BTreeMap<String, usize>> = Mutex::new(BTreeMap::new());
                let exact_count = enumerate_exact(&cfg, n, |exec| {
                    *exact.lock().unwrap().entry(exec.signature()).or_default() += 1;
                });
                let incremental: Mutex<BTreeMap<String, usize>> = Mutex::new(BTreeMap::new());
                let inc_count = enumerate_exact_incremental(&cfg, n, || {
                    |exec: &Execution, _delta: &Delta| {
                        *incremental
                            .lock()
                            .unwrap()
                            .entry(exec.signature())
                            .or_default() += 1;
                    }
                });
                assert_eq!(exact_count, inc_count, "count mismatch at n={n}");
                assert_eq!(
                    exact.into_inner().unwrap(),
                    incremental.into_inner().unwrap(),
                    "signature multiset mismatch at n={n}"
                );
            }
        }
    }

    /// The deltas handed to the sink must faithfully describe how the
    /// in-place execution evolved: every family that differs from the
    /// previous candidate is in the mask, and an additions-only delta never
    /// shrinks a relation.
    #[test]
    fn incremental_deltas_describe_the_mutations() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        cfg.transactions = true;
        cfg.max_txns = 2;
        cfg.rmws = true;
        cfg.dependencies = true;
        use tm_exec::ir::DeltaMask;
        let checked = AtomicUsize::new(0);
        enumerate_exact_incremental(&cfg, 3, || {
            let mut prev: Option<Execution> = None;
            let checked = &checked;
            move |exec: &Execution, delta: &Delta| {
                assert!(tm_exec::check_well_formed(exec).is_ok());
                if let Some(prev) = prev.as_ref().filter(|_| !delta.is_full()) {
                    let families = [
                        (DeltaMask::RF, &prev.rf, &exec.rf),
                        (DeltaMask::CO, &prev.co, &exec.co),
                        (DeltaMask::ADDR, &prev.addr, &exec.addr),
                        (DeltaMask::DATA, &prev.data, &exec.data),
                        (DeltaMask::RMW, &prev.rmw, &exec.rmw),
                        (DeltaMask::STXN, &prev.stxn, &exec.stxn),
                    ];
                    for (mask, before, after) in families {
                        if before != after {
                            assert!(
                                delta.mask().intersects(mask),
                                "changed family missing from the delta mask"
                            );
                        }
                        if delta.is_additions_only() {
                            assert!(
                                before.is_subset_of(after),
                                "additions-only delta shrank a relation"
                            );
                        }
                    }
                    assert_eq!(prev.po, exec.po, "po is fixed within a shape");
                }
                prev = Some(exec.clone());
                checked.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(checked.load(Ordering::Relaxed) > 100);
    }

    /// The worker pool must produce the same result no matter how many
    /// threads service the unit queue.
    #[test]
    fn counts_are_thread_count_independent() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        cfg.transactions = true;
        cfg.max_txns = 1;
        let single = enumerate_exact_with_threads(&cfg, 3, 1, |_| {}, &|| false);
        let multi = enumerate_exact_with_threads(&cfg, 3, 4, |_| {}, &|| false);
        assert_eq!(single, multi);
    }

    /// The cooperative stop hook must actually cut the sweep short rather
    /// than letting workers enumerate the whole space.
    #[test]
    fn should_stop_halts_the_sweep_early() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        cfg.transactions = true;
        cfg.max_txns = 2;
        let full = enumerate_exact(&cfg, 3, |_| {});

        let seen = AtomicUsize::new(0);
        let visited = enumerate_exact_until(
            &cfg,
            3,
            |_| {
                seen.fetch_add(1, Ordering::Relaxed);
            },
            || seen.load(Ordering::Relaxed) >= 10,
        );
        assert!(visited < full, "stop hook did not halt ({visited}/{full})");

        let seen = AtomicUsize::new(0);
        let visited = enumerate_exact_incremental_until(
            &cfg,
            3,
            || {
                let seen = &seen;
                move |_: &Execution, _: &Delta| {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            },
            || seen.load(Ordering::Relaxed) >= 10,
        );
        assert!(visited < full, "incremental stop hook did not halt");

        // A never-firing hook visits everything.
        assert_eq!(enumerate_exact_until(&cfg, 3, |_| {}, || false), full);
    }

    /// Splitting a unit must partition its candidate multiset exactly: the
    /// union of the children's expansions equals the parent's, ids stay
    /// unique, and re-splitting to full depth bottoms out.
    #[test]
    fn split_children_cover_the_parent_exactly() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        cfg.transactions = true;
        cfg.max_txns = 2;
        cfg.fences = vec![Fence::Sync];
        let n = 3;
        for symmetry in [Symmetry::Full, Symmetry::Reduced] {
            for unit in produce_units(&cfg, n, symmetry) {
                assert!(unit.splittable(n), "test depth leaves one digit");
                let children = unit.split(&cfg, n, symmetry);
                assert!(!children.is_empty());
                let mut ids: HashSet<u64> = children.iter().map(|c| c.stable_id(&cfg, n)).collect();
                assert_eq!(ids.len(), children.len(), "child id collision");
                assert!(
                    ids.insert(unit.stable_id(&cfg, n)),
                    "child id equals the parent's"
                );
                // Grandchildren of a full-depth child: none.
                assert!(children[0].split(&cfg, n, symmetry).is_empty());

                let mut parent: BTreeMap<String, usize> = BTreeMap::new();
                let mut parent_tally = ReducedCount::default();
                let mut child_tally = ReducedCount::default();
                match symmetry {
                    Symmetry::Full => {
                        enumerate_unit_incremental(
                            &cfg,
                            &unit,
                            n,
                            &mut |e: &Execution, _: &Delta| {
                                *parent.entry(e.signature()).or_default() += 1;
                            },
                            || false,
                        );
                    }
                    Symmetry::Reduced => {
                        parent_tally = enumerate_unit_reduced(
                            &cfg,
                            &unit,
                            n,
                            &mut |e: &Execution, _: &Delta, _| {
                                *parent.entry(e.signature()).or_default() += 1;
                            },
                            || false,
                        );
                    }
                }
                let mut union: BTreeMap<String, usize> = BTreeMap::new();
                for child in &children {
                    match symmetry {
                        Symmetry::Full => {
                            enumerate_unit_incremental(
                                &cfg,
                                child,
                                n,
                                &mut |e: &Execution, _: &Delta| {
                                    *union.entry(e.signature()).or_default() += 1;
                                },
                                || false,
                            );
                        }
                        Symmetry::Reduced => {
                            child_tally.add(enumerate_unit_reduced(
                                &cfg,
                                child,
                                n,
                                &mut |e: &Execution, _: &Delta, _| {
                                    *union.entry(e.signature()).or_default() += 1;
                                },
                                || false,
                            ));
                        }
                    }
                }
                assert_eq!(parent, union, "children must cover the parent exactly");
                if symmetry.is_reduced() {
                    assert_eq!(parent_tally.representatives, child_tally.representatives);
                    assert_eq!(
                        parent_tally.weighted, child_tally.weighted,
                        "orbit-weighted counts must survive splitting"
                    );
                }
            }
        }
    }

    /// The weight estimate bounds the full-mode visit count from above and
    /// is conserved by splitting (children sum to the parent).
    #[test]
    fn weight_bounds_visits_and_splits_conserve_it() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        cfg.transactions = true;
        cfg.max_txns = 2;
        cfg.rmws = true;
        cfg.dependencies = true;
        let n = 3;
        let mut total_weight = 0u64;
        let mut total_visited = 0usize;
        for unit in produce_units(&cfg, n, Symmetry::Full) {
            let weight = unit.weight(&cfg, n);
            let visited = enumerate_unit_incremental(
                &cfg,
                &unit,
                n,
                &mut |_: &Execution, _: &Delta| {},
                || false,
            );
            assert!(
                weight >= visited as u64,
                "weight {weight} under-estimates {visited} for {}",
                unit.label()
            );
            let child_sum: u64 = unit
                .split(&cfg, n, Symmetry::Full)
                .iter()
                .map(|c| c.weight(&cfg, n))
                .sum();
            assert_eq!(child_sum, weight, "splitting must conserve weight");
            total_weight += weight;
            total_visited += visited;
        }
        // The bound is not vacuous: with max_txns=2 it stays within the
        // unconstrained odometer product.
        assert!(total_weight >= total_visited as u64);
        assert!(total_visited > 0);
    }
}

//! Bounded exhaustive enumeration of well-formed candidate executions.

use tm_exec::{Annot, Event, Execution, ExecutionBuilder};

use crate::SynthConfig;

/// Enumerates every well-formed candidate execution with exactly `n` events
/// within the bounds of `config`, invoking `f` on each. Returns the number
/// of executions visited.
///
/// Enumeration is canonical up to the obvious symmetries: threads are
/// listed in non-increasing size order and locations are numbered in first-
/// use order. Remaining thread symmetry (between equal-sized threads) is
/// left to the caller to collapse with [`crate::canonical_signature`].
pub fn enumerate_exact(config: &SynthConfig, n: usize, mut f: impl FnMut(&Execution)) -> usize {
    let mut count = 0;
    if n == 0 {
        return 0;
    }
    for partition in compositions(n, config.max_threads) {
        let mut shapes: Vec<EventShape> = Vec::with_capacity(n);
        enumerate_shapes(config, &partition, &mut shapes, &mut |shapes| {
            enumerate_relations(config, &partition, shapes, &mut |exec| {
                count += 1;
                f(exec);
            });
        });
    }
    count
}

/// Enumerates executions of every size from 2 up to `config.max_events`.
pub fn enumerate_all(config: &SynthConfig, mut f: impl FnMut(&Execution)) -> usize {
    let mut count = 0;
    for n in 2..=config.max_events {
        count += enumerate_exact(config, n, &mut f);
    }
    count
}

/// The non-increasing compositions of `n` into at most `max_parts` parts.
fn compositions(n: usize, max_parts: usize) -> Vec<Vec<usize>> {
    fn go(remaining: usize, max_part: usize, parts_left: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining == 0 {
            out.push(prefix.clone());
            return;
        }
        if parts_left == 0 {
            return;
        }
        for part in (1..=remaining.min(max_part)).rev() {
            prefix.push(part);
            go(remaining - part, part, parts_left - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go(n, n, max_parts, &mut Vec::new(), &mut out);
    out
}

/// The per-event choice: what the event is, where it accesses, and how it is
/// annotated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EventShape {
    Read(u32, Annot),
    Write(u32, Annot),
    Fence(tm_exec::Fence),
}

fn enumerate_shapes(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &mut Vec<EventShape>,
    f: &mut impl FnMut(&[EventShape]),
) {
    let n: usize = partition.iter().sum();
    if shapes.len() == n {
        f(shapes);
        return;
    }
    // Location canonicalisation: a new event may use any location already
    // used, or the next fresh one.
    let used = shapes
        .iter()
        .filter_map(|s| match s {
            EventShape::Read(l, _) | EventShape::Write(l, _) => Some(*l + 1),
            EventShape::Fence(_) => None,
        })
        .max()
        .unwrap_or(0);
    let loc_limit = (used + 1).min(config.max_locs as u32);
    for loc in 0..loc_limit {
        for &annot in &config.read_annots {
            shapes.push(EventShape::Read(loc, annot));
            enumerate_shapes(config, partition, shapes, f);
            shapes.pop();
        }
        for &annot in &config.write_annots {
            shapes.push(EventShape::Write(loc, annot));
            enumerate_shapes(config, partition, shapes, f);
            shapes.pop();
        }
    }
    for &fence in &config.fences {
        shapes.push(EventShape::Fence(fence));
        enumerate_shapes(config, partition, shapes, f);
        shapes.pop();
    }
}

/// Iterates the cartesian product of `0..dims[i]` index tuples.
fn for_each_product(dims: &[usize], mut f: impl FnMut(&[usize])) {
    if dims.iter().any(|&d| d == 0) {
        return;
    }
    let mut idx = vec![0usize; dims.len()];
    loop {
        f(&idx);
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == dims.len() {
                return;
            }
            idx[i] += 1;
            if idx[i] < dims[i] {
                break;
            }
            idx[i] = 0;
            i += 1;
        }
    }
}

fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

/// All ways of choosing disjoint contiguous non-empty intervals (transactions)
/// over a thread with events `ids` (in program order), with at most
/// `max_txns` intervals in total across the caller's budget tracked by the
/// caller. Each choice is a list of intervals, each a list of event ids.
fn interval_sets(ids: &[usize]) -> Vec<Vec<Vec<usize>>> {
    // Dynamic programming over positions: at each position either skip one
    // event or start an interval of some length.
    fn go(ids: &[usize], from: usize, acc: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if from == ids.len() {
            out.push(acc.clone());
            return;
        }
        // Event `from` is not in any transaction.
        go(ids, from + 1, acc, out);
        // Or an interval starts at `from`.
        for end in from + 1..=ids.len() {
            acc.push(ids[from..end].to_vec());
            go(ids, end, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    go(ids, 0, &mut Vec::new(), &mut out);
    out
}

fn enumerate_relations(
    config: &SynthConfig,
    partition: &[usize],
    shapes: &[EventShape],
    f: &mut impl FnMut(&Execution),
) {
    let n = shapes.len();
    // Event ids are grouped by thread: thread t owns a contiguous block.
    let mut thread_of = vec![0u32; n];
    let mut thread_blocks: Vec<Vec<usize>> = Vec::new();
    {
        let mut next = 0usize;
        for (t, &size) in partition.iter().enumerate() {
            let block: Vec<usize> = (next..next + size).collect();
            for &e in &block {
                thread_of[e] = t as u32;
            }
            thread_blocks.push(block);
            next += size;
        }
    }

    let loc_of = |e: usize| match shapes[e] {
        EventShape::Read(l, _) | EventShape::Write(l, _) => Some(l),
        EventShape::Fence(_) => None,
    };
    let is_read = |e: usize| matches!(shapes[e], EventShape::Read(..));
    let is_write = |e: usize| matches!(shapes[e], EventShape::Write(..));

    let reads: Vec<usize> = (0..n).filter(|&e| is_read(e)).collect();
    let locs: Vec<u32> = {
        let mut l: Vec<u32> = (0..n).filter_map(loc_of).collect();
        l.sort_unstable();
        l.dedup();
        l
    };

    // rf choices: each read observes the initial state or one same-location
    // write.
    let rf_options: Vec<Vec<Option<usize>>> = reads
        .iter()
        .map(|&r| {
            let mut opts: Vec<Option<usize>> = vec![None];
            opts.extend(
                (0..n)
                    .filter(|&w| is_write(w) && loc_of(w) == loc_of(r))
                    .map(Some),
            );
            opts
        })
        .collect();

    // co choices: a permutation of the writes to each location.
    let co_options: Vec<Vec<Vec<usize>>> = locs
        .iter()
        .map(|&l| {
            let writes: Vec<usize> = (0..n)
                .filter(|&w| is_write(w) && loc_of(w) == Some(l))
                .collect();
            permutations(&writes)
        })
        .collect();

    // dependency choices: for each (read, po-later access on the same
    // thread) pair, either no dependency or one (data to writes, address to
    // reads).
    let dep_pairs: Vec<(usize, usize)> = if config.dependencies {
        let mut pairs = Vec::new();
        for &r in &reads {
            for e in r + 1..n {
                if thread_of[e] == thread_of[r] && loc_of(e).is_some() {
                    pairs.push((r, e));
                }
            }
        }
        pairs
    } else {
        Vec::new()
    };

    // rmw choices: adjacent same-location read/write pairs on one thread.
    let rmw_pairs: Vec<(usize, usize)> = if config.rmws {
        (0..n.saturating_sub(1))
            .filter(|&e| {
                is_read(e)
                    && is_write(e + 1)
                    && thread_of[e] == thread_of[e + 1]
                    && loc_of(e) == loc_of(e + 1)
            })
            .map(|e| (e, e + 1))
            .collect()
    } else {
        Vec::new()
    };

    // transaction choices: per thread, a set of disjoint contiguous
    // intervals.
    let txn_options: Vec<Vec<Vec<Vec<usize>>>> = if config.transactions {
        thread_blocks.iter().map(|b| interval_sets(b)).collect()
    } else {
        thread_blocks.iter().map(|_| vec![vec![]]).collect()
    };

    // The odometer dimensions: rf per read, co per location, 2 per dep pair,
    // 2 per rmw pair, txn set per thread.
    let mut dims: Vec<usize> = Vec::new();
    dims.extend(rf_options.iter().map(Vec::len));
    dims.extend(co_options.iter().map(Vec::len));
    dims.extend(std::iter::repeat(2).take(dep_pairs.len()));
    dims.extend(std::iter::repeat(2).take(rmw_pairs.len()));
    dims.extend(txn_options.iter().map(Vec::len));

    for_each_product(&dims, |idx| {
        let mut cursor = 0usize;
        let mut b = ExecutionBuilder::new();
        for (e, shape) in shapes.iter().enumerate() {
            let event = match *shape {
                EventShape::Read(l, a) => Event::read(thread_of[e], l).with_annot(a),
                EventShape::Write(l, a) => Event::write(thread_of[e], l).with_annot(a),
                EventShape::Fence(k) => Event::fence(thread_of[e], k),
            };
            b.push(event);
        }
        for (i, &r) in reads.iter().enumerate() {
            if let Some(w) = rf_options[i][idx[cursor + i]] {
                b.rf(w, r);
            }
        }
        cursor += reads.len();
        for (i, _) in locs.iter().enumerate() {
            b.co_order(&co_options[i][idx[cursor + i]]);
        }
        cursor += locs.len();
        for (i, &(r, e)) in dep_pairs.iter().enumerate() {
            if idx[cursor + i] == 1 {
                if is_write(e) {
                    b.data(r, e);
                } else {
                    b.addr(r, e);
                }
            }
        }
        cursor += dep_pairs.len();
        for (i, &(r, w)) in rmw_pairs.iter().enumerate() {
            if idx[cursor + i] == 1 {
                b.rmw(r, w);
            }
        }
        cursor += rmw_pairs.len();
        let mut txn_count = 0usize;
        for (t, _) in thread_blocks.iter().enumerate() {
            for interval in &txn_options[t][idx[cursor + t]] {
                b.txn(interval);
                txn_count += 1;
            }
        }
        if txn_count > config.max_txns {
            return;
        }
        if let Ok(exec) = b.build() {
            f(&exec);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::Fence;

    fn tiny_config() -> SynthConfig {
        SynthConfig {
            max_events: 2,
            max_threads: 2,
            max_locs: 2,
            fences: vec![],
            read_annots: vec![Annot::PLAIN],
            write_annots: vec![Annot::PLAIN],
            dependencies: false,
            rmws: false,
            transactions: false,
            max_txns: 0,
        }
    }

    #[test]
    fn compositions_are_non_increasing_and_bounded() {
        let cs = compositions(4, 3);
        assert!(cs.contains(&vec![2, 2]));
        assert!(cs.contains(&vec![2, 1, 1]));
        assert!(!cs.contains(&vec![1, 1, 1, 1])); // four parts > max
        for c in &cs {
            assert_eq!(c.iter().sum::<usize>(), 4);
            assert!(c.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn product_iteration_covers_every_tuple() {
        let mut seen = Vec::new();
        for_each_product(&[2, 3], |idx| seen.push(idx.to_vec()));
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&vec![1, 2]));
        // Empty dimension produces nothing.
        let mut count = 0;
        for_each_product(&[2, 0], |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn interval_sets_enumerate_disjoint_contiguous_txns() {
        let sets = interval_sets(&[10, 11, 12]);
        // Must include: none, each singleton, each pair, the triple, and
        // combinations like [10],[12].
        assert!(sets.contains(&vec![]));
        assert!(sets.contains(&vec![vec![10, 11, 12]]));
        assert!(sets.contains(&vec![vec![10], vec![12]]));
        assert!(sets.contains(&vec![vec![10], vec![11], vec![12]]));
        // All intervals are contiguous and disjoint.
        for set in &sets {
            let mut all: Vec<usize> = set.iter().flatten().copied().collect();
            let len_before = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), len_before);
        }
    }

    #[test]
    fn two_event_enumeration_is_small_and_well_formed() {
        let cfg = tiny_config();
        let mut count = 0;
        let total = enumerate_exact(&cfg, 2, |exec| {
            assert_eq!(exec.len(), 2);
            assert!(tm_exec::check_well_formed(exec).is_ok());
            count += 1;
        });
        assert_eq!(count, total);
        assert!(total > 0);
        // Rough sanity bound: 2 events, ≤2 locations, R/W only.
        assert!(total < 200, "unexpectedly large: {total}");
    }

    #[test]
    fn transactions_increase_the_space() {
        let without = enumerate_exact(&tiny_config(), 2, |_| {});
        let mut cfg = tiny_config();
        cfg.transactions = true;
        cfg.max_txns = 2;
        let with = enumerate_exact(&cfg, 2, |_| {});
        assert!(with > without);
    }

    #[test]
    fn fences_appear_when_enabled() {
        let mut cfg = tiny_config();
        cfg.fences = vec![Fence::MFence];
        let mut saw_fence = false;
        enumerate_exact(&cfg, 2, |exec| {
            if !exec.fences().is_empty() {
                saw_fence = true;
            }
        });
        assert!(saw_fence);
    }

    #[test]
    fn enumerate_all_sums_sizes() {
        let mut cfg = tiny_config();
        cfg.max_events = 3;
        let two = enumerate_exact(&cfg, 2, |_| {});
        let three = enumerate_exact(&cfg, 3, |_| {});
        let all = enumerate_all(&cfg, |_| {});
        assert_eq!(all, two + three);
    }

    #[test]
    fn dependencies_and_rmws_appear_when_enabled() {
        let mut cfg = tiny_config();
        cfg.dependencies = true;
        cfg.rmws = true;
        let mut saw_dep = false;
        let mut saw_rmw = false;
        enumerate_exact(&cfg, 2, |exec| {
            if !exec.data.is_empty() || !exec.addr.is_empty() {
                saw_dep = true;
            }
            if !exec.rmw.is_empty() {
                saw_rmw = true;
            }
        });
        assert!(saw_dep);
        assert!(saw_rmw);
    }
}

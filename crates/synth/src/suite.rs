//! Synthesis of Forbid and Allow conformance suites (§4.2, Table 1).

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::{ExecView, Execution};
use tm_litmus::{from_execution, Expectation, LitmusTest};
use tm_models::MemoryModel;

use crate::{
    canonical_signature, enumerate_exact, weakenings, weakenings_with_signatures, SynthConfig,
};

/// One synthesised conformance test.
#[derive(Clone, Debug)]
pub struct SynthesisedTest {
    /// The witnessing execution.
    pub execution: Execution,
    /// The litmus test derived from it (§2.2, §3.2).
    pub litmus: LitmusTest,
    /// How long after the start of synthesis this test was found — the raw
    /// data behind Fig. 7.
    pub found_after: Duration,
}

/// The result of synthesising the Forbid and Allow suites for one model at
/// one event-count bound: the row format of Table 1.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Name of the transactional model under study.
    pub model: String,
    /// The exact number of events enumerated.
    pub event_count: usize,
    /// How many candidate executions were visited.
    pub enumerated: usize,
    /// Minimally-forbidden tests: inconsistent under the TM model, consistent
    /// under the baseline, and every ⊏-weakening consistent under the TM
    /// model.
    pub forbid: Vec<SynthesisedTest>,
    /// Maximally-allowed tests: one ⊏-step weakenings of Forbid tests that
    /// the TM model accepts.
    pub allow: Vec<SynthesisedTest>,
    /// Total wall-clock synthesis time.
    pub elapsed: Duration,
}

impl SuiteReport {
    /// The number of transactions in each Forbid test, as a histogram keyed
    /// by transaction count (index 0 = no transaction). Used to reproduce
    /// the "29% had one transaction, 44% had two, …" breakdown of §5.3.
    pub fn forbid_txn_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; 4];
        for t in &self.forbid {
            let k = t.execution.txn_classes().len().min(3);
            hist[k] += 1;
        }
        hist
    }
}

/// Synthesises the Forbid and Allow suites for `tm_model` against
/// `baseline`, enumerating executions with exactly `events` events.
///
/// Following §4.2 and §5.3:
///
/// * **Forbid** = executions forbidden by the transactional model, allowed
///   by the baseline, and minimal in the ⊏ order (every weakening is
///   consistent under the transactional model);
/// * **Allow** = the one-step weakenings of Forbid tests that the
///   transactional model accepts (the approximation of maximal consistency
///   used by the paper).
///
/// Tests are deduplicated up to thread and location renaming.
pub fn synthesise_suites(
    tm_model: &dyn MemoryModel,
    baseline: &dyn MemoryModel,
    config: &SynthConfig,
    events: usize,
) -> SuiteReport {
    let start = Instant::now();
    // Candidates found by the parallel workers, keyed by canonical signature
    // for deduplication; sorted afterwards so the report is deterministic
    // regardless of worker interleaving.
    let found: Mutex<Vec<(String, Execution, Duration)>> = Mutex::new(Vec::new());
    let seen: Mutex<HashSet<String>> = Mutex::new(HashSet::new());

    let enumerated = enumerate_exact(config, events, |exec| {
        // Forbid tests distinguish the TM model from its baseline, so an
        // execution with no transaction can never qualify.
        if exec.txn_classes().is_empty() {
            return;
        }
        // One memoized view serves both model checks.
        let view = ExecView::new(exec);
        if tm_model.is_consistent_view(&view) || !baseline.is_consistent_view(&view) {
            return;
        }
        // Minimality: every ⊏-weaker execution is consistent under the TM
        // model.
        if !weakenings(exec).iter().all(|w| tm_model.is_consistent(w)) {
            return;
        }
        let sig = canonical_signature(exec);
        if !seen.lock().unwrap().insert(sig.clone()) {
            return;
        }
        found
            .lock()
            .unwrap()
            .push((sig, exec.clone(), start.elapsed()));
    });

    let mut candidates = found.into_inner().unwrap();
    candidates.sort_by(|a, b| a.0.cmp(&b.0));
    let forbid: Vec<SynthesisedTest> = candidates
        .into_iter()
        .enumerate()
        .map(|(index, (_, execution, found_after))| {
            let mut litmus = from_execution(
                &execution,
                &format!("forbid-{}-{events}ev-{index}", tm_model.name()),
            );
            litmus.expectation = Some(Expectation::Forbidden);
            SynthesisedTest {
                execution,
                litmus,
                found_after,
            }
        })
        .collect();

    // Allow suite: weakenings of Forbid tests that the model accepts.
    // `weakenings` already returns each candidate once (deduplicated by
    // canonical signature), so no per-test re-filtering happens here; two
    // *distinct* Forbid tests can still share a weakening, so the suites are
    // merged across tests by signature, which also fixes the report order.
    let mut allow_by_sig: BTreeMap<String, (Execution, Duration)> = BTreeMap::new();
    for test in &forbid {
        for (sig, weaker) in weakenings_with_signatures(&test.execution) {
            if tm_model.is_consistent(&weaker) {
                allow_by_sig
                    .entry(sig)
                    .or_insert_with(|| (weaker, start.elapsed()));
            }
        }
    }
    let allow: Vec<SynthesisedTest> = allow_by_sig
        .into_values()
        .enumerate()
        .map(|(index, (weaker, found_after))| {
            let mut litmus = from_execution(
                &weaker,
                &format!("allow-{}-{events}ev-{index}", tm_model.name()),
            );
            litmus.expectation = Some(Expectation::Allowed);
            SynthesisedTest {
                execution: weaker,
                litmus,
                found_after,
            }
        })
        .collect();

    SuiteReport {
        model: tm_model.name().to_string(),
        event_count: events,
        enumerated,
        forbid,
        allow,
        elapsed: start.elapsed(),
    }
}

/// Searches for a single execution that is inconsistent under `stronger` but
/// consistent under `weaker` — Memalloy's core "compare two models" query.
/// Sizes from 2 to `config.max_events` are tried in order; a witness of the
/// smallest separating size is returned (which witness of that size is
/// run-dependent, since the enumeration workers race to it).
pub fn find_distinguishing(
    stronger: &dyn MemoryModel,
    weaker: &dyn MemoryModel,
    config: &SynthConfig,
) -> Option<Execution> {
    for n in 2..=config.max_events {
        let done = AtomicBool::new(false);
        let found: Mutex<Option<Execution>> = Mutex::new(None);
        enumerate_exact(config, n, |exec| {
            if done.load(Ordering::Relaxed) {
                return;
            }
            let view = ExecView::new(exec);
            if !stronger.is_consistent_view(&view) && weaker.is_consistent_view(&view) {
                done.store(true, Ordering::Relaxed);
                found.lock().unwrap().get_or_insert_with(|| exec.clone());
            }
        });
        let found = found.into_inner().unwrap();
        if found.is_some() {
            return found;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_models::{Armv8Model, PowerModel, ScModel, X86Model};

    #[test]
    fn tsc_versus_sc_finds_the_isolation_tests_at_three_events() {
        let cfg = SynthConfig {
            dependencies: false,
            rmws: false,
            fences: vec![],
            ..SynthConfig::x86(3)
        };
        let report = synthesise_suites(&ScModel::tsc(), &ScModel::sc(), &cfg, 3);
        // The Fig. 3 shapes (strong-isolation violations) are among the
        // minimally-forbidden TSC tests.
        assert!(!report.forbid.is_empty());
        assert!(report.enumerated > 0);
        for t in &report.forbid {
            assert!(!ScModel::tsc().is_consistent(&t.execution));
            assert!(ScModel::sc().is_consistent(&t.execution));
            assert_eq!(t.litmus.expectation, Some(Expectation::Forbidden));
        }
        // Every forbid test contains at least one transaction.
        assert_eq!(report.forbid_txn_histogram()[0], 0);
    }

    #[test]
    fn x86_two_event_suites_are_tiny() {
        let cfg = SynthConfig::x86(2);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 2);
        // With two events there is very little a transaction can forbid that
        // the baseline allows (the paper found 4 such tests at |E|=3 and 0
        // at |E|=2 for x86).
        assert!(report.forbid.len() <= 2, "got {}", report.forbid.len());
        for t in &report.allow {
            assert!(X86Model::tm().is_consistent(&t.execution));
        }
    }

    #[test]
    fn forbid_tests_are_minimal() {
        let cfg = SynthConfig::x86(3);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
        for t in &report.forbid {
            for w in weakenings(&t.execution) {
                assert!(
                    X86Model::tm().is_consistent(&w),
                    "a weakening of a Forbid test must be consistent"
                );
            }
        }
    }

    #[test]
    fn allow_tests_are_weakenings_that_pass() {
        let cfg = SynthConfig::x86(3);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
        assert!(report.allow.len() >= report.forbid.len());
        for t in &report.allow {
            assert_eq!(t.litmus.expectation, Some(Expectation::Allowed));
        }
    }

    #[test]
    fn distinguishing_search_separates_known_model_pairs() {
        let cfg = SynthConfig {
            transactions: false,
            rmws: false,
            fences: vec![],
            dependencies: false,
            ..SynthConfig::x86(4)
        };
        // SC is stronger than x86: store buffering distinguishes them.
        let witness = find_distinguishing(&ScModel::sc(), &X86Model::baseline(), &cfg)
            .expect("SC and x86 differ");
        assert!(!ScModel::sc().is_consistent(&witness));
        assert!(X86Model::baseline().is_consistent(&witness));

        // ARMv8 is weaker than x86 on po relaxations: the reverse direction
        // also finds a witness (x86 forbids something ARMv8 allows).
        let witness = find_distinguishing(&X86Model::baseline(), &Armv8Model::baseline(), &cfg)
            .expect("x86 and ARMv8 differ");
        assert!(Armv8Model::baseline().is_consistent(&witness));
    }

    #[test]
    fn power_tm_forbid_tests_exist_at_four_events_with_rmws() {
        // The §8.1 TxnCancelsRMW shape appears as a tiny Forbid test.
        let cfg = SynthConfig::power(2);
        let report = synthesise_suites(&PowerModel::tm(), &PowerModel::baseline(), &cfg, 2);
        assert!(
            report
                .forbid
                .iter()
                .any(|t| !t.execution.rmw.is_empty() && !t.execution.txn_classes().is_empty()),
            "expected an RMW-straddling-transaction Forbid test"
        );
    }
}

//! Synthesis of Forbid and Allow conformance suites (§4.2, Table 1).
//!
//! The default [`synthesise_suites`] pipeline is **delta-driven**: the
//! enumerator mutates one execution per worker in place, each worker's
//! stateful [`DeltaChecker`] pair absorbs the edge deltas, and the
//! ⊏-minimality walk probes each weakening as a removal delta bracketed by
//! checker savepoint/rollback — no per-candidate views, no cloned
//! weakenings on the hot path. Two wrinkles the port had to handle:
//!
//! * the transaction-free early-out must still *thread the delta* (advance
//!   the checkers) before skipping, or their cached state would drift from
//!   the in-place execution;
//! * the minimality walk probes from the candidate's live state, so every
//!   probe is bracketed by `savepoint`/`rollback` on the checker and
//!   apply/undo on a reusable probe buffer (event removals, which change
//!   the universe, are probed as full-delta resets under the same
//!   savepoint).
//!
//! The pre-incremental pipeline is kept as
//! [`synthesise_suites_per_execution`] — the parity oracle and the "before"
//! the benchmark harness measures.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::ir::Delta;
use tm_exec::{check_well_formed, ExecView, Execution};
use tm_litmus::{from_execution, Expectation, LitmusTest};
use tm_models::ir::IncrementalChecker;
use tm_models::{DeltaChecker, MemoryModel, Target};

use crate::weaken::{apply_weakening_edits, undo_weakening_edits, weakening_edits, Weakening};
use crate::{
    canonical_signature, enumerate_exact, enumerate_exact_incremental,
    enumerate_exact_incremental_until, enumerate_exact_until, enumerate_reduced_incremental,
    weakenings, weakenings_with_signatures, CanonSig, Symmetry, SynthConfig,
};

/// One synthesised conformance test.
#[derive(Clone, Debug)]
pub struct SynthesisedTest {
    /// The witnessing execution.
    pub execution: Execution,
    /// The litmus test derived from it (§2.2, §3.2).
    pub litmus: LitmusTest,
    /// How long after the start of synthesis this test was found — the raw
    /// data behind Fig. 7.
    pub found_after: Duration,
}

/// The result of synthesising the Forbid and Allow suites for one model at
/// one event-count bound: the row format of Table 1.
#[derive(Clone, Debug)]
pub struct SuiteReport {
    /// Name of the transactional model under study.
    pub model: String,
    /// The exact number of events enumerated.
    pub event_count: usize,
    /// How many candidate executions were visited.
    pub enumerated: usize,
    /// How many candidate executions the sweep *covered*, counting each
    /// visited representative with its isomorphism-orbit size. Equal to
    /// `enumerated` under [`Symmetry::Full`]; under [`Symmetry::Reduced`]
    /// this matches the full-mode `enumerated` while the reduced
    /// `enumerated` counts only canonical representatives.
    pub effective: u64,
    /// Minimally-forbidden tests: inconsistent under the TM model, consistent
    /// under the baseline, and every ⊏-weakening consistent under the TM
    /// model.
    pub forbid: Vec<SynthesisedTest>,
    /// Maximally-allowed tests: one ⊏-step weakenings of Forbid tests that
    /// the TM model accepts.
    pub allow: Vec<SynthesisedTest>,
    /// Total wall-clock synthesis time.
    pub elapsed: Duration,
}

impl SuiteReport {
    /// The number of transactions in each Forbid test, as a histogram keyed
    /// by transaction count (index 0 = no transaction). Used to reproduce
    /// the "29% had one transaction, 44% had two, …" breakdown of §5.3.
    pub fn forbid_txn_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; 4];
        for t in &self.forbid {
            let k = t.execution.txn_classes().len().min(3);
            hist[k] += 1;
        }
        hist
    }
}

/// A worker-local accumulator of Forbid candidates: findings collect in an
/// unlocked local vector (plus a local signature filter) and merge into the
/// shared vector exactly once, when the worker's sink is dropped at the end
/// of the sweep — the shared mutex is touched once per worker, not once per
/// candidate.
struct WorkerFinds<'a> {
    local: Vec<(CanonSig, Execution, Duration)>,
    seen: HashSet<CanonSig>,
    out: &'a Mutex<Vec<(CanonSig, Execution, Duration)>>,
}

impl<'a> WorkerFinds<'a> {
    fn new(out: &'a Mutex<Vec<(CanonSig, Execution, Duration)>>) -> WorkerFinds<'a> {
        WorkerFinds {
            local: Vec::new(),
            seen: HashSet::new(),
            out,
        }
    }
}

impl Drop for WorkerFinds<'_> {
    fn drop(&mut self) {
        self.out.lock().unwrap().append(&mut self.local);
    }
}

/// One target's face on a *shared* catalog checker: when both models of a
/// suite are built-in, a single [`IncrementalChecker`] absorbs each delta
/// once and serves every target's axioms from the same shared-pool state;
/// this adapter lets the minimality walk probe the TM target through the
/// common [`DeltaChecker`] interface.
struct CatalogProbe<'c> {
    checker: &'c mut IncrementalChecker,
    target: Target,
    cr_order: bool,
}

impl DeltaChecker for CatalogProbe<'_> {
    fn advance(&mut self, exec: &Execution, delta: &Delta) {
        self.checker.advance(exec, delta);
    }

    fn is_consistent(&mut self, exec: &Execution) -> bool {
        if self.cr_order {
            self.checker.is_consistent_with_cr_order(exec, self.target)
        } else {
            self.checker.is_consistent(exec, self.target)
        }
    }

    fn savepoint(&mut self) {
        self.checker.savepoint();
    }

    fn rollback(&mut self) {
        self.checker.rollback();
    }
}

/// The ⊏-minimality check, probed incrementally: every weakening of `exec`
/// must be consistent under the model `checker` fronts. Same-universe
/// weakenings are applied to a reusable probe buffer and undone; every
/// probe is bracketed by checker savepoint/rollback, so the checker's live
/// state (which describes `exec`) survives untouched.
///
/// Public because the checkpointed sweep runner (`tm-sweep`) rebuilds the
/// per-unit Forbid sink out of this probe plus [`enumerate_unit_incremental`]
/// (see [`crate::enumerate_unit_incremental`]); keeping one implementation
/// is what makes an interrupted-and-resumed sweep provably identical to
/// this crate's [`synthesise_suites`].
pub fn minimal_under_weakenings(
    checker: &mut dyn DeltaChecker,
    exec: &Execution,
    probe_buf: &mut Option<Execution>,
) -> bool {
    let probe = match probe_buf {
        Some(probe) => {
            probe.clone_from(exec);
            probe
        }
        None => probe_buf.insert(exec.clone()),
    };
    for weakening in weakening_edits(exec) {
        let consistent = match weakening {
            // An event removal changes the universe: probe it as a full
            // reset, still under the savepoint.
            Weakening::Rebuild(weaker) => {
                checker.savepoint();
                checker.advance(&weaker, &Delta::everything());
                let ok = checker.is_consistent(&weaker);
                checker.rollback();
                ok
            }
            Weakening::Edits(edits) => {
                let mut delta = Delta::new();
                apply_weakening_edits(probe, &edits, &mut delta);
                let ok = if check_well_formed(probe).is_ok() {
                    checker.savepoint();
                    checker.advance(probe, &delta);
                    let ok = checker.is_consistent(probe);
                    checker.rollback();
                    ok
                } else {
                    // Ill-formed results are not candidate executions and
                    // do not bear on minimality.
                    true
                };
                undo_weakening_edits(probe, &edits);
                ok
            }
        };
        if !consistent {
            return false;
        }
    }
    true
}

/// Synthesises the Forbid and Allow suites for `tm_model` against
/// `baseline`, enumerating executions with exactly `events` events.
///
/// Following §4.2 and §5.3:
///
/// * **Forbid** = executions forbidden by the transactional model, allowed
///   by the baseline, and minimal in the ⊏ order (every weakening is
///   consistent under the transactional model);
/// * **Allow** = the one-step weakenings of Forbid tests that the
///   transactional model accepts (the approximation of maximal consistency
///   used by the paper).
///
/// Tests are deduplicated up to thread and location renaming.
///
/// When both models provide a [`DeltaChecker`] (all built-in models and
/// runtime `.cat` models do), the sweep runs on the delta-threading
/// enumeration with stateful checkers and savepoint-probed minimality
/// walks; otherwise it falls back to per-execution views. Either way the
/// result is identical to [`synthesise_suites_per_execution`], pinned by
/// `tests/suite_parity.rs`.
pub fn synthesise_suites(
    tm_model: &dyn MemoryModel,
    baseline: &dyn MemoryModel,
    config: &SynthConfig,
    events: usize,
) -> SuiteReport {
    synthesise_suites_with(tm_model, baseline, config, events, Symmetry::Full)
}

/// Runs one of the suite sweep pipelines' sinks over either the full
/// enumeration or the symmetry-reduced one. The suite logic never needs the
/// orbit size per candidate — Forbid membership is invariant under
/// thread/location renaming and tests are deduplicated by canonical
/// signature anyway — so the reduced walker's orbit argument is dropped and
/// only the aggregate tally is kept: `(visited, effective)` where
/// `effective` is the orbit-weighted candidate count (equal to `visited`
/// under [`Symmetry::Full`]).
fn enumerate_for_suites<S>(
    config: &SynthConfig,
    events: usize,
    symmetry: Symmetry,
    make_sink: impl Fn() -> S + Sync,
) -> (usize, u64)
where
    S: FnMut(&Execution, &Delta),
{
    match symmetry {
        Symmetry::Full => {
            let visited = enumerate_exact_incremental(config, events, make_sink);
            (visited, visited as u64)
        }
        Symmetry::Reduced => {
            let tally = enumerate_reduced_incremental(config, events, || {
                let mut sink = make_sink();
                move |exec: &Execution, delta: &Delta, _orbit: u64| sink(exec, delta)
            });
            (tally.representatives, tally.weighted)
        }
    }
}

/// [`synthesise_suites`] with an explicit [`Symmetry`] mode.
///
/// Under [`Symmetry::Reduced`] the sweep visits exactly one canonical
/// representative per thread/location-renaming class. Because every test
/// property involved — TM inconsistency, baseline consistency and
/// ⊏-minimality — is invariant under renaming, and the suites are
/// deduplicated by canonical signature regardless of mode, the resulting
/// Forbid and Allow suites are **identical** to the full sweep's
/// (`tests/symmetry_parity.rs` pins this); only `enumerated` shrinks to the
/// representative count, with `effective` preserving the full-space total.
pub fn synthesise_suites_with(
    tm_model: &dyn MemoryModel,
    baseline: &dyn MemoryModel,
    config: &SynthConfig,
    events: usize,
    symmetry: Symmetry,
) -> SuiteReport {
    let start = Instant::now();
    // Candidates found by the parallel workers; sorted and deduplicated
    // afterwards so the report is deterministic regardless of worker
    // interleaving.
    let found: Mutex<Vec<(CanonSig, Execution, Duration)>> = Mutex::new(Vec::new());

    let catalog_pair = tm_model.catalog_target().zip(baseline.catalog_target());
    let incremental =
        tm_model.incremental_checker().is_some() && baseline.incremental_checker().is_some();
    let (enumerated, effective) =
        if let Some(((tm_target, tm_cr), (base_target, base_cr))) = catalog_pair {
            // Both models are built-in: one shared-catalog checker absorbs each
            // delta once and serves both targets (whose axiom bodies largely
            // coincide as hash-consed nodes) from the same state.
            enumerate_for_suites(config, events, symmetry, || {
                let mut checker = IncrementalChecker::new();
                let mut finds = WorkerFinds::new(&found);
                let mut probe_buf: Option<Execution> = None;
                move |exec: &Execution, delta: &Delta| {
                    checker.advance(exec, delta);
                    if exec.stxn.is_empty() {
                        return;
                    }
                    let tm_ok = if tm_cr {
                        checker.is_consistent_with_cr_order(exec, tm_target)
                    } else {
                        checker.is_consistent(exec, tm_target)
                    };
                    if tm_ok {
                        return;
                    }
                    let base_ok = if base_cr {
                        checker.is_consistent_with_cr_order(exec, base_target)
                    } else {
                        checker.is_consistent(exec, base_target)
                    };
                    if !base_ok {
                        return;
                    }
                    let sig = canonical_signature(exec);
                    if !finds.seen.insert(sig.clone()) {
                        return;
                    }
                    let mut probe = CatalogProbe {
                        checker: &mut checker,
                        target: tm_target,
                        cr_order: tm_cr,
                    };
                    if !minimal_under_weakenings(&mut probe, exec, &mut probe_buf) {
                        return;
                    }
                    finds.local.push((sig, exec.clone(), start.elapsed()));
                }
            })
        } else if incremental {
            enumerate_for_suites(config, events, symmetry, || {
                let mut tm_checker = tm_model.incremental_checker().expect("probed above");
                let mut base_checker = baseline.incremental_checker().expect("probed above");
                let mut finds = WorkerFinds::new(&found);
                let mut probe_buf: Option<Execution> = None;
                move |exec: &Execution, delta: &Delta| {
                    // Thread the delta *before* any early-out: a skipped
                    // candidate still moved the in-place execution, and the
                    // checkers' cached state must follow it.
                    tm_checker.advance(exec, delta);
                    base_checker.advance(exec, delta);
                    // Forbid tests distinguish the TM model from its baseline,
                    // so an execution with no transaction can never qualify
                    // (no stxn pair ⇔ no transaction class — allocation-free,
                    // unlike materialising the classes).
                    if exec.stxn.is_empty() {
                        return;
                    }
                    if tm_checker.is_consistent(exec) || !base_checker.is_consistent(exec) {
                        return;
                    }
                    let sig = canonical_signature(exec);
                    if !finds.seen.insert(sig.clone()) {
                        return;
                    }
                    if !minimal_under_weakenings(tm_checker.as_mut(), exec, &mut probe_buf) {
                        return;
                    }
                    finds.local.push((sig, exec.clone(), start.elapsed()));
                }
            })
        } else {
            // View-based fallback for models without incremental checkers —
            // still per-worker sinks, so the shared mutex stays cold.
            enumerate_for_suites(config, events, symmetry, || {
                let mut finds = WorkerFinds::new(&found);
                move |exec: &Execution, _delta: &Delta| {
                    if exec.txn_classes().is_empty() {
                        return;
                    }
                    let view = ExecView::new(exec);
                    if tm_model.is_consistent_view(&view) || !baseline.is_consistent_view(&view) {
                        return;
                    }
                    let sig = canonical_signature(exec);
                    if !finds.seen.insert(sig.clone()) {
                        return;
                    }
                    if !weakenings(exec).iter().all(|w| tm_model.is_consistent(w)) {
                        return;
                    }
                    finds.local.push((sig, exec.clone(), start.elapsed()));
                }
            })
        };

    assemble_suites(
        tm_model,
        events,
        enumerated,
        effective,
        found.into_inner().unwrap(),
        start,
    )
}

/// The pre-incremental suite pipeline, kept verbatim: per-execution views,
/// cloned weakenings for the minimality walk, and globally locked
/// deduplication inside the hot sink. It is the oracle `tests/suite_parity.rs`
/// pins [`synthesise_suites`] against and the "before" configuration the
/// benchmark harness measures.
pub fn synthesise_suites_per_execution(
    tm_model: &dyn MemoryModel,
    baseline: &dyn MemoryModel,
    config: &SynthConfig,
    events: usize,
) -> SuiteReport {
    let start = Instant::now();
    let found: Mutex<Vec<(CanonSig, Execution, Duration)>> = Mutex::new(Vec::new());
    let seen: Mutex<HashSet<CanonSig>> = Mutex::new(HashSet::new());

    let enumerated = enumerate_exact(config, events, |exec| {
        if exec.txn_classes().is_empty() {
            return;
        }
        // One memoized view serves both model checks.
        let view = ExecView::new(exec);
        if tm_model.is_consistent_view(&view) || !baseline.is_consistent_view(&view) {
            return;
        }
        // Minimality: every ⊏-weaker execution is consistent under the TM
        // model.
        if !weakenings(exec).iter().all(|w| tm_model.is_consistent(w)) {
            return;
        }
        let sig = canonical_signature(exec);
        if !seen.lock().unwrap().insert(sig.clone()) {
            return;
        }
        found
            .lock()
            .unwrap()
            .push((sig, exec.clone(), start.elapsed()));
    });

    assemble_suites(
        tm_model,
        events,
        enumerated,
        enumerated as u64,
        found.into_inner().unwrap(),
        start,
    )
}

/// Sorts, deduplicates and packages the Forbid candidates (triples of
/// canonical signature, execution and time-to-find), then derives the Allow
/// suite — shared by every synthesis pipeline, including the checkpointed
/// sweep runner, which feeds it candidates merged from journalled work
/// units. Candidates are sorted by `(signature, found_after)` and
/// deduplicated by signature, so the suites depend only on the candidate
/// *set* handed in, not on worker interleaving.
pub fn assemble_suites(
    tm_model: &dyn MemoryModel,
    events: usize,
    enumerated: usize,
    effective: u64,
    mut candidates: Vec<(CanonSig, Execution, Duration)>,
    start: Instant,
) -> SuiteReport {
    // Workers deduplicate locally; two workers can still find the same
    // canonical test, so deduplicate globally here (keeping the earliest
    // find, which also fixes the report order).
    candidates.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.cmp(&b.2)));
    candidates.dedup_by(|a, b| a.0 == b.0);
    let forbid: Vec<SynthesisedTest> = candidates
        .into_iter()
        .enumerate()
        .map(|(index, (_, execution, found_after))| {
            let mut litmus = from_execution(
                &execution,
                &format!("forbid-{}-{events}ev-{index}", tm_model.name()),
            );
            litmus.expectation = Some(Expectation::Forbidden);
            SynthesisedTest {
                execution,
                litmus,
                found_after,
            }
        })
        .collect();

    // Allow suite: weakenings of Forbid tests that the model accepts.
    // `weakenings` already returns each candidate once (deduplicated by
    // canonical signature), so no per-test re-filtering happens here; two
    // *distinct* Forbid tests can still share a weakening, so the suites are
    // merged across tests by signature, which also fixes the report order.
    let mut allow_by_sig: BTreeMap<CanonSig, (Execution, Duration)> = BTreeMap::new();
    for test in &forbid {
        for (sig, weaker) in weakenings_with_signatures(&test.execution) {
            if tm_model.is_consistent(&weaker) {
                allow_by_sig
                    .entry(sig)
                    .or_insert_with(|| (weaker, start.elapsed()));
            }
        }
    }
    let allow: Vec<SynthesisedTest> = allow_by_sig
        .into_values()
        .enumerate()
        .map(|(index, (weaker, found_after))| {
            let mut litmus = from_execution(
                &weaker,
                &format!("allow-{}-{events}ev-{index}", tm_model.name()),
            );
            litmus.expectation = Some(Expectation::Allowed);
            SynthesisedTest {
                execution: weaker,
                litmus,
                found_after,
            }
        })
        .collect();

    SuiteReport {
        model: tm_model.name().to_string(),
        event_count: events,
        enumerated,
        effective,
        forbid,
        allow,
        elapsed: start.elapsed(),
    }
}

/// Searches for a single execution that is inconsistent under `stronger` but
/// consistent under `weaker` — Memalloy's core "compare two models" query.
/// Sizes from 2 to `config.max_events` are tried in order; a witness of the
/// smallest separating size is returned (which witness of that size is
/// run-dependent, since the enumeration workers race to it).
///
/// The first witness found **stops the sweep**: the enumeration polls a
/// cooperative stop hook between work units and shape vectors, so workers
/// halt instead of enumerating the rest of the space with a dead sink.
/// When both models provide a [`DeltaChecker`], candidates are checked
/// through per-worker stateful checkers on the delta-threading enumeration.
pub fn find_distinguishing(
    stronger: &dyn MemoryModel,
    weaker: &dyn MemoryModel,
    config: &SynthConfig,
) -> Option<Execution> {
    let catalog_pair = stronger.catalog_target().zip(weaker.catalog_target());
    let incremental =
        stronger.incremental_checker().is_some() && weaker.incremental_checker().is_some();
    for n in 2..=config.max_events {
        let done = AtomicBool::new(false);
        let found: Mutex<Option<Execution>> = Mutex::new(None);
        if let Some(((strong_target, strong_cr), (weak_target, weak_cr))) = catalog_pair {
            enumerate_exact_incremental_until(
                config,
                n,
                || {
                    let mut checker = IncrementalChecker::new();
                    let (done, found) = (&done, &found);
                    move |exec: &Execution, delta: &Delta| {
                        checker.advance(exec, delta);
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                        let strong_ok = if strong_cr {
                            checker.is_consistent_with_cr_order(exec, strong_target)
                        } else {
                            checker.is_consistent(exec, strong_target)
                        };
                        if strong_ok {
                            return;
                        }
                        let weak_ok = if weak_cr {
                            checker.is_consistent_with_cr_order(exec, weak_target)
                        } else {
                            checker.is_consistent(exec, weak_target)
                        };
                        if weak_ok {
                            done.store(true, Ordering::Relaxed);
                            found.lock().unwrap().get_or_insert_with(|| exec.clone());
                        }
                    }
                },
                || done.load(Ordering::Relaxed),
            );
        } else if incremental {
            enumerate_exact_incremental_until(
                config,
                n,
                || {
                    let mut strong_checker = stronger.incremental_checker().expect("probed above");
                    let mut weak_checker = weaker.incremental_checker().expect("probed above");
                    let (done, found) = (&done, &found);
                    move |exec: &Execution, delta: &Delta| {
                        // Keep the cached state coherent even while the
                        // sweep drains after a witness was found.
                        strong_checker.advance(exec, delta);
                        weak_checker.advance(exec, delta);
                        if done.load(Ordering::Relaxed) {
                            return;
                        }
                        if !strong_checker.is_consistent(exec) && weak_checker.is_consistent(exec) {
                            done.store(true, Ordering::Relaxed);
                            found.lock().unwrap().get_or_insert_with(|| exec.clone());
                        }
                    }
                },
                || done.load(Ordering::Relaxed),
            );
        } else {
            enumerate_exact_until(
                config,
                n,
                |exec| {
                    if done.load(Ordering::Relaxed) {
                        return;
                    }
                    let view = ExecView::new(exec);
                    if !stronger.is_consistent_view(&view) && weaker.is_consistent_view(&view) {
                        done.store(true, Ordering::Relaxed);
                        found.lock().unwrap().get_or_insert_with(|| exec.clone());
                    }
                },
                || done.load(Ordering::Relaxed),
            );
        }
        let found = found.into_inner().unwrap();
        if found.is_some() {
            return found;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_models::{Armv8Model, PowerModel, ScModel, X86Model};

    #[test]
    fn tsc_versus_sc_finds_the_isolation_tests_at_three_events() {
        let cfg = SynthConfig {
            dependencies: false,
            rmws: false,
            fences: vec![],
            ..SynthConfig::x86(3)
        };
        let report = synthesise_suites(&ScModel::tsc(), &ScModel::sc(), &cfg, 3);
        // The Fig. 3 shapes (strong-isolation violations) are among the
        // minimally-forbidden TSC tests.
        assert!(!report.forbid.is_empty());
        assert!(report.enumerated > 0);
        for t in &report.forbid {
            assert!(!ScModel::tsc().is_consistent(&t.execution));
            assert!(ScModel::sc().is_consistent(&t.execution));
            assert_eq!(t.litmus.expectation, Some(Expectation::Forbidden));
        }
        // Every forbid test contains at least one transaction.
        assert_eq!(report.forbid_txn_histogram()[0], 0);
    }

    #[test]
    fn x86_two_event_suites_are_tiny() {
        let cfg = SynthConfig::x86(2);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 2);
        // With two events there is very little a transaction can forbid that
        // the baseline allows (the paper found 4 such tests at |E|=3 and 0
        // at |E|=2 for x86).
        assert!(report.forbid.len() <= 2, "got {}", report.forbid.len());
        for t in &report.allow {
            assert!(X86Model::tm().is_consistent(&t.execution));
        }
    }

    #[test]
    fn forbid_tests_are_minimal() {
        let cfg = SynthConfig::x86(3);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
        for t in &report.forbid {
            for w in weakenings(&t.execution) {
                assert!(
                    X86Model::tm().is_consistent(&w),
                    "a weakening of a Forbid test must be consistent"
                );
            }
        }
    }

    #[test]
    fn allow_tests_are_weakenings_that_pass() {
        let cfg = SynthConfig::x86(3);
        let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
        assert!(report.allow.len() >= report.forbid.len());
        for t in &report.allow {
            assert_eq!(t.litmus.expectation, Some(Expectation::Allowed));
        }
    }

    #[test]
    fn distinguishing_search_separates_known_model_pairs() {
        let cfg = SynthConfig {
            transactions: false,
            rmws: false,
            fences: vec![],
            dependencies: false,
            ..SynthConfig::x86(4)
        };
        // SC is stronger than x86: store buffering distinguishes them.
        let witness = find_distinguishing(&ScModel::sc(), &X86Model::baseline(), &cfg)
            .expect("SC and x86 differ");
        assert!(!ScModel::sc().is_consistent(&witness));
        assert!(X86Model::baseline().is_consistent(&witness));

        // ARMv8 is weaker than x86 on po relaxations: the reverse direction
        // also finds a witness (x86 forbids something ARMv8 allows).
        let witness = find_distinguishing(&X86Model::baseline(), &Armv8Model::baseline(), &cfg)
            .expect("x86 and ARMv8 differ");
        assert!(Armv8Model::baseline().is_consistent(&witness));
    }

    #[test]
    fn power_tm_forbid_tests_exist_at_four_events_with_rmws() {
        // The §8.1 TxnCancelsRMW shape appears as a tiny Forbid test.
        let cfg = SynthConfig::power(2);
        let report = synthesise_suites(&PowerModel::tm(), &PowerModel::baseline(), &cfg, 2);
        assert!(
            report
                .forbid
                .iter()
                .any(|t| !t.execution.rmw.is_empty() && !t.execution.txn_classes().is_empty()),
            "expected an RMW-straddling-transaction Forbid test"
        );
    }
}

//! The ⊏ execution-weakening order of §4.2.

use std::collections::HashSet;

use tm_exec::ir::{Delta, RelBase};
use tm_exec::{check_well_formed, Annot, Execution};

use crate::{canonical_signature, CanonSig};

/// One ⊏-weakening expressed *against the candidate it weakens*, so an
/// incremental pipeline can probe it without cloning the execution:
///
/// * the same-universe steps (§4.2(ii) dependency removal, §4.2(iii)
///   annotation downgrade, §4.2(v) transaction shrink) are reversible edit
///   scripts — apply them in place with [`apply_weakening_edits`] (which
///   records the matching [`Delta`] for a stateful checker), probe, then
///   [`undo_weakening_edits`];
/// * event removal (§4.2(i)) changes the universe, so the weaker execution
///   is materialised outright.
///
/// Edit-script weakenings are **not** pre-filtered for well-formedness or
/// deduplicated: probe loops check `check_well_formed` on the edited
/// execution (skipping ill-formed results, which are not candidates at
/// all) and deduplicate by signature if they need to. The clone-based
/// [`weakenings`] family, which filters and deduplicates, is built on this
/// same generator.
#[derive(Clone, Debug)]
pub enum Weakening {
    /// §4.2(i): an event removed with its incident edges (boxed: most
    /// weakenings are small edit scripts).
    Rebuild(Box<Execution>),
    /// A same-universe weakening as a reversible edit script.
    Edits(Vec<WeakeningEdit>),
}

/// One reversible in-place edit of an execution.
#[derive(Clone, Copy, Debug)]
pub enum WeakeningEdit {
    /// Remove pair `(a, b)` from a primitive relation (`addr`, `ctrl`,
    /// `data`, `rmw`, `stxn`, `stxnat`).
    RemovePair(RelBase, usize, usize),
    /// Replace event `e`'s annotation: `(event, old, new)`.
    SetAnnot(usize, Annot, Annot),
}

fn primitive_mut(exec: &mut Execution, base: RelBase) -> &mut tm_relation::Relation {
    match base {
        RelBase::Addr => &mut exec.addr,
        RelBase::Ctrl => &mut exec.ctrl,
        RelBase::Data => &mut exec.data,
        RelBase::Rmw => &mut exec.rmw,
        RelBase::Stxn => &mut exec.stxn,
        RelBase::Stxnat => &mut exec.stxnat,
        other => unreachable!("weakenings do not edit {other:?}"),
    }
}

/// Applies an edit script in place, recording the edits in `delta` so a
/// stateful checker ([`tm_models::DeltaChecker`]-shaped) can absorb them.
///
/// [`tm_models::DeltaChecker`]: https://docs.rs/tm-models
pub fn apply_weakening_edits(exec: &mut Execution, edits: &[WeakeningEdit], delta: &mut Delta) {
    for &edit in edits {
        match edit {
            WeakeningEdit::RemovePair(base, a, b) => {
                primitive_mut(exec, base).remove(a, b);
                delta.remove_edge(base, a, b);
            }
            WeakeningEdit::SetAnnot(e, _, new) => {
                exec.events[e].annot = new;
                delta.touch_annots();
            }
        }
    }
}

/// Reverts an edit script applied by [`apply_weakening_edits`], restoring
/// the execution exactly. Callers pair this with a checker rollback.
pub fn undo_weakening_edits(exec: &mut Execution, edits: &[WeakeningEdit]) {
    for &edit in edits.iter().rev() {
        match edit {
            WeakeningEdit::RemovePair(base, a, b) => {
                primitive_mut(exec, base).insert(a, b);
            }
            WeakeningEdit::SetAnnot(e, old, _) => {
                exec.events[e].annot = old;
            }
        }
    }
}

/// Every one-step ⊏-weakening of `exec` as a [`Weakening`] — the
/// delta-friendly generator behind [`weakenings`]. `Rebuild` results are
/// filtered for well-formedness (an ill-formed execution is not a
/// candidate); `Edits` results are raw (see [`Weakening`] on the caller's
/// obligations).
pub fn weakening_edits(exec: &Execution) -> Vec<Weakening> {
    let mut out = Vec::new();

    // (i) remove an event.
    for e in 0..exec.len() {
        let weaker = exec.remove_event(e);
        if check_well_formed(&weaker).is_ok() {
            out.push(Weakening::Rebuild(Box::new(weaker)));
        }
    }

    // (ii) remove a dependency edge.
    for (field, base) in [
        (DepField::Addr, RelBase::Addr),
        (DepField::Ctrl, RelBase::Ctrl),
        (DepField::Data, RelBase::Data),
        (DepField::Rmw, RelBase::Rmw),
    ] {
        for (a, b) in field.get(exec).iter() {
            out.push(Weakening::Edits(vec![WeakeningEdit::RemovePair(
                base, a, b,
            )]));
        }
    }

    // (iii) downgrade an event's annotation.
    for e in 0..exec.len() {
        let current = exec.event(e).annot;
        for weaker in weaker_annots(current) {
            out.push(Weakening::Edits(vec![WeakeningEdit::SetAnnot(
                e, current, weaker,
            )]));
        }
    }

    // (v) shrink a transaction at either end.
    for class in exec.txn_classes() {
        let first = *class
            .iter()
            .min_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        let last = *class
            .iter()
            .max_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        let mut ends = vec![first];
        if last != first {
            ends.push(last);
        }
        for end in ends {
            let mut edits = Vec::new();
            for other in 0..exec.len() {
                for (rel, base) in [(&exec.stxn, RelBase::Stxn), (&exec.stxnat, RelBase::Stxnat)] {
                    if rel.contains(end, other) {
                        edits.push(WeakeningEdit::RemovePair(base, end, other));
                    }
                    if other != end && rel.contains(other, end) {
                        edits.push(WeakeningEdit::RemovePair(base, other, end));
                    }
                }
            }
            out.push(Weakening::Edits(edits));
        }
    }

    out
}

/// Returns every execution one ⊏-step weaker than `exec`:
///
/// 1. an event removed (with its incident edges) — §4.2(i);
/// 2. a dependency edge (`addr`, `ctrl`, `data`, `rmw`) removed — §4.2(ii);
/// 3. an event downgraded to a strictly weaker annotation — §4.2(iii);
/// 4. the first or last event of a transaction made non-transactional —
///    §4.2(v).
///
/// Ill-formed results (e.g. a lock-elision critical region losing its lock
/// call) are dropped: they are not candidate executions at all. The result
/// is deduplicated by [`canonical_signature`]: two weakening steps that land
/// on the same execution up to thread/location renaming (removing either of
/// two symmetric events, say) yield one entry, so callers neither check the
/// same candidate twice nor need to re-filter duplicates themselves.
pub fn weakenings(exec: &Execution) -> Vec<Execution> {
    weakenings_with_signatures(exec)
        .into_iter()
        .map(|(_, weaker)| weaker)
        .collect()
}

/// [`weakenings`] paired with each result's [`canonical_signature`] — the
/// signature is computed for deduplication anyway, so callers that key on it
/// (the Allow-suite merge) need not recompute it. Materialises every
/// [`weakening_edits`] result on a clone, filters the ill-formed ones, and
/// deduplicates.
pub fn weakenings_with_signatures(exec: &Execution) -> Vec<(CanonSig, Execution)> {
    let mut out = Vec::new();
    let mut seen: HashSet<CanonSig> = HashSet::new();
    for weakening in weakening_edits(exec) {
        let weaker = match weakening {
            Weakening::Rebuild(weaker) => *weaker,
            Weakening::Edits(edits) => {
                let mut weaker = exec.clone();
                let mut delta = Delta::new();
                apply_weakening_edits(&mut weaker, &edits, &mut delta);
                weaker
            }
        };
        if check_well_formed(&weaker).is_ok() {
            let sig = canonical_signature(&weaker);
            if seen.insert(sig.clone()) {
                out.push((sig, weaker));
            }
        }
    }
    out
}

/// Annotation choices strictly weaker than `annot`, drawn from the standard
/// lattice plain ⊑ relaxed ⊑ {acquire, release} ⊑ seq_cst.
fn weaker_annots(annot: Annot) -> Vec<Annot> {
    let candidates = [
        Annot::PLAIN,
        Annot::relaxed_atomic(),
        Annot::acquire(),
        Annot::release(),
        Annot::acquire_atomic(),
        Annot::release_atomic(),
    ];
    candidates
        .into_iter()
        .filter(|c| *c != annot && c.is_weaker_or_equal(annot))
        .collect()
}

#[derive(Clone, Copy)]
enum DepField {
    Addr,
    Ctrl,
    Data,
    Rmw,
}

impl DepField {
    fn get<'a>(&self, exec: &'a Execution) -> &'a tm_relation::Relation {
        match self {
            DepField::Addr => &exec.addr,
            DepField::Ctrl => &exec.ctrl,
            DepField::Data => &exec.data,
            DepField::Rmw => &exec.rmw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn weakening_a_plain_execution_removes_events_only() {
        let sb = catalog::sb();
        let ws = weakenings(&sb);
        // Four single-event removals, but SB is symmetric under swapping its
        // threads (and locations), so only two canonical weakenings remain:
        // "drop a write" and "drop a read".
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.len() == 3));
        assert!(ws.iter().any(|w| w.writes().len() == 1));
        assert!(ws.iter().any(|w| w.reads().len() == 1));
    }

    #[test]
    fn weakenings_contain_no_canonical_duplicates() {
        for exec in [
            catalog::sb(),
            catalog::sb_txn(),
            catalog::wrc(),
            catalog::fig2(),
            catalog::power_iriw_two_txns(),
            catalog::monotonicity_cex_coalesced(),
        ] {
            let ws = weakenings(&exec);
            let sigs: std::collections::HashSet<CanonSig> =
                ws.iter().map(crate::canonical_signature).collect();
            assert_eq!(sigs.len(), ws.len(), "duplicate weakenings returned");
        }
    }

    #[test]
    fn weakening_removes_dependency_edges() {
        let wrc = catalog::wrc();
        let ws = weakenings(&wrc);
        // 5 event removals + 2 dependency removals.
        assert_eq!(ws.len(), 7);
        assert!(ws
            .iter()
            .any(|w| w.len() == 5 && w.data.is_empty() && !w.addr.is_empty()));
        assert!(ws
            .iter()
            .any(|w| w.len() == 5 && w.addr.is_empty() && !w.data.is_empty()));
    }

    #[test]
    fn weakening_shrinks_transactions_from_the_ends() {
        let fig2 = catalog::fig2();
        let ws = weakenings(&fig2);
        // Three event removals plus two transaction shrinks.
        assert_eq!(ws.len(), 5);
        let shrunk: Vec<&Execution> = ws.iter().filter(|w| w.len() == 3).collect();
        assert_eq!(shrunk.len(), 2);
        for w in shrunk {
            assert_eq!(w.txn_classes().iter().map(Vec::len).sum::<usize>(), 1);
        }
    }

    #[test]
    fn weakening_downgrades_annotations() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::release()));
        b.push(Event::read(1, 0).with_annot(Annot::acquire()));
        let e = b.build().unwrap();
        let ws = weakenings(&e);
        // Two removals + one downgrade each.
        assert_eq!(ws.len(), 4);
        assert!(ws
            .iter()
            .any(|w| w.len() == 2 && w.event(0).annot == Annot::PLAIN));
        assert!(ws
            .iter()
            .any(|w| w.len() == 2 && w.event(1).annot == Annot::PLAIN));
    }

    #[test]
    fn weaker_annot_lattice_is_strict() {
        assert!(weaker_annots(Annot::PLAIN).is_empty());
        assert!(weaker_annots(Annot::acquire()).contains(&Annot::PLAIN));
        let sc = weaker_annots(Annot::seq_cst());
        assert!(sc.contains(&Annot::acquire_atomic()));
        assert!(sc.contains(&Annot::relaxed_atomic()));
        assert!(!sc.contains(&Annot::seq_cst()));
    }

    #[test]
    fn weakenings_of_rmw_pair_drop_the_pairing() {
        let e = catalog::monotonicity_cex_coalesced();
        let ws = weakenings(&e);
        assert!(ws.iter().any(|w| w.len() == 2 && w.rmw.is_empty()));
    }

    /// The delta-friendly edit scripts and the clone-based weakenings are
    /// two views of the same ⊏ step: replaying every same-universe script
    /// in place reaches exactly the materialised weakenings, and undoing
    /// restores the candidate bit for bit.
    #[test]
    fn edit_scripts_match_materialised_weakenings() {
        for exec in [
            catalog::sb_txn(),
            catalog::fig2(),
            catalog::wrc(),
            catalog::power_iriw_two_txns(),
            catalog::monotonicity_cex_coalesced(),
        ] {
            let mut probe = exec.clone();
            let mut probed: std::collections::HashSet<CanonSig> = std::collections::HashSet::new();
            for weakening in weakening_edits(&exec) {
                if let Weakening::Edits(edits) = weakening {
                    let mut delta = Delta::new();
                    apply_weakening_edits(&mut probe, &edits, &mut delta);
                    assert!(!delta.is_empty(), "edit scripts record their delta");
                    if check_well_formed(&probe).is_ok() {
                        probed.insert(canonical_signature(&probe));
                    }
                    undo_weakening_edits(&mut probe, &edits);
                    assert_eq!(probe, exec, "undo must restore the candidate exactly");
                }
            }
            for (sig, weaker) in weakenings_with_signatures(&exec) {
                if weaker.len() == exec.len() {
                    assert!(
                        probed.contains(&sig),
                        "materialised weakening missing from the edit scripts"
                    );
                }
            }
        }
    }

    #[test]
    fn all_weakenings_are_well_formed() {
        for exec in [
            catalog::power_wrc_tprop1(),
            catalog::power_iriw_two_txns(),
            catalog::fig10_abstract(),
            catalog::example_1_1_concrete(false),
        ] {
            for w in weakenings(&exec) {
                assert!(check_well_formed(&w).is_ok());
            }
        }
    }
}

//! The ⊏ execution-weakening order of §4.2.

use std::collections::HashSet;

use tm_exec::{check_well_formed, Annot, Execution};

use crate::canonical_signature;

/// Returns every execution one ⊏-step weaker than `exec`:
///
/// 1. an event removed (with its incident edges) — §4.2(i);
/// 2. a dependency edge (`addr`, `ctrl`, `data`, `rmw`) removed — §4.2(ii);
/// 3. an event downgraded to a strictly weaker annotation — §4.2(iii);
/// 4. the first or last event of a transaction made non-transactional —
///    §4.2(v).
///
/// Ill-formed results (e.g. a lock-elision critical region losing its lock
/// call) are dropped: they are not candidate executions at all. The result
/// is deduplicated by [`canonical_signature`]: two weakening steps that land
/// on the same execution up to thread/location renaming (removing either of
/// two symmetric events, say) yield one entry, so callers neither check the
/// same candidate twice nor need to re-filter duplicates themselves.
pub fn weakenings(exec: &Execution) -> Vec<Execution> {
    weakenings_with_signatures(exec)
        .into_iter()
        .map(|(_, weaker)| weaker)
        .collect()
}

/// [`weakenings`] paired with each result's [`canonical_signature`] — the
/// signature is computed for deduplication anyway, so callers that key on it
/// (the Allow-suite merge) need not recompute it.
pub fn weakenings_with_signatures(exec: &Execution) -> Vec<(String, Execution)> {
    let mut out = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut push = |candidate: Execution| {
        if check_well_formed(&candidate).is_ok() {
            let sig = canonical_signature(&candidate);
            if seen.insert(sig.clone()) {
                out.push((sig, candidate));
            }
        }
    };

    // (i) remove an event.
    for e in 0..exec.len() {
        push(exec.remove_event(e));
    }

    // (ii) remove a dependency edge.
    for field in [
        DepField::Addr,
        DepField::Ctrl,
        DepField::Data,
        DepField::Rmw,
    ] {
        let rel = field.get(exec);
        for (a, b) in rel.iter() {
            let mut weaker = exec.clone();
            field.get_mut(&mut weaker).remove(a, b);
            push(weaker);
        }
    }

    // (iii) downgrade an event's annotation.
    for e in 0..exec.len() {
        let current = exec.event(e).annot;
        for weaker in weaker_annots(current) {
            let mut weaker_exec = exec.clone();
            weaker_exec.events[e].annot = weaker;
            push(weaker_exec);
        }
    }

    // (v) shrink a transaction at either end.
    for class in exec.txn_classes() {
        let first = *class
            .iter()
            .min_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        let last = *class
            .iter()
            .max_by_key(|&&e| exec.po.predecessors(e).count())
            .expect("transaction classes are non-empty");
        let mut ends = vec![first];
        if last != first {
            ends.push(last);
        }
        for end in ends {
            let mut weaker = exec.clone();
            for other in 0..exec.len() {
                weaker.stxn.remove(end, other);
                weaker.stxn.remove(other, end);
                weaker.stxnat.remove(end, other);
                weaker.stxnat.remove(other, end);
            }
            push(weaker);
        }
    }

    out
}

/// Annotation choices strictly weaker than `annot`, drawn from the standard
/// lattice plain ⊑ relaxed ⊑ {acquire, release} ⊑ seq_cst.
fn weaker_annots(annot: Annot) -> Vec<Annot> {
    let candidates = [
        Annot::PLAIN,
        Annot::relaxed_atomic(),
        Annot::acquire(),
        Annot::release(),
        Annot::acquire_atomic(),
        Annot::release_atomic(),
    ];
    candidates
        .into_iter()
        .filter(|c| *c != annot && c.is_weaker_or_equal(annot))
        .collect()
}

#[derive(Clone, Copy)]
enum DepField {
    Addr,
    Ctrl,
    Data,
    Rmw,
}

impl DepField {
    fn get<'a>(&self, exec: &'a Execution) -> &'a tm_relation::Relation {
        match self {
            DepField::Addr => &exec.addr,
            DepField::Ctrl => &exec.ctrl,
            DepField::Data => &exec.data,
            DepField::Rmw => &exec.rmw,
        }
    }

    fn get_mut<'a>(&self, exec: &'a mut Execution) -> &'a mut tm_relation::Relation {
        match self {
            DepField::Addr => &mut exec.addr,
            DepField::Ctrl => &mut exec.ctrl,
            DepField::Data => &mut exec.data,
            DepField::Rmw => &mut exec.rmw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::{catalog, Event, ExecutionBuilder};

    #[test]
    fn weakening_a_plain_execution_removes_events_only() {
        let sb = catalog::sb();
        let ws = weakenings(&sb);
        // Four single-event removals, but SB is symmetric under swapping its
        // threads (and locations), so only two canonical weakenings remain:
        // "drop a write" and "drop a read".
        assert_eq!(ws.len(), 2);
        assert!(ws.iter().all(|w| w.len() == 3));
        assert!(ws.iter().any(|w| w.writes().len() == 1));
        assert!(ws.iter().any(|w| w.reads().len() == 1));
    }

    #[test]
    fn weakenings_contain_no_canonical_duplicates() {
        for exec in [
            catalog::sb(),
            catalog::sb_txn(),
            catalog::wrc(),
            catalog::fig2(),
            catalog::power_iriw_two_txns(),
            catalog::monotonicity_cex_coalesced(),
        ] {
            let ws = weakenings(&exec);
            let sigs: std::collections::HashSet<String> =
                ws.iter().map(crate::canonical_signature).collect();
            assert_eq!(sigs.len(), ws.len(), "duplicate weakenings returned");
        }
    }

    #[test]
    fn weakening_removes_dependency_edges() {
        let wrc = catalog::wrc();
        let ws = weakenings(&wrc);
        // 5 event removals + 2 dependency removals.
        assert_eq!(ws.len(), 7);
        assert!(ws
            .iter()
            .any(|w| w.len() == 5 && w.data.is_empty() && !w.addr.is_empty()));
        assert!(ws
            .iter()
            .any(|w| w.len() == 5 && w.addr.is_empty() && !w.data.is_empty()));
    }

    #[test]
    fn weakening_shrinks_transactions_from_the_ends() {
        let fig2 = catalog::fig2();
        let ws = weakenings(&fig2);
        // Three event removals plus two transaction shrinks.
        assert_eq!(ws.len(), 5);
        let shrunk: Vec<&Execution> = ws.iter().filter(|w| w.len() == 3).collect();
        assert_eq!(shrunk.len(), 2);
        for w in shrunk {
            assert_eq!(w.txn_classes().iter().map(Vec::len).sum::<usize>(), 1);
        }
    }

    #[test]
    fn weakening_downgrades_annotations() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::release()));
        b.push(Event::read(1, 0).with_annot(Annot::acquire()));
        let e = b.build().unwrap();
        let ws = weakenings(&e);
        // Two removals + one downgrade each.
        assert_eq!(ws.len(), 4);
        assert!(ws
            .iter()
            .any(|w| w.len() == 2 && w.event(0).annot == Annot::PLAIN));
        assert!(ws
            .iter()
            .any(|w| w.len() == 2 && w.event(1).annot == Annot::PLAIN));
    }

    #[test]
    fn weaker_annot_lattice_is_strict() {
        assert!(weaker_annots(Annot::PLAIN).is_empty());
        assert!(weaker_annots(Annot::acquire()).contains(&Annot::PLAIN));
        let sc = weaker_annots(Annot::seq_cst());
        assert!(sc.contains(&Annot::acquire_atomic()));
        assert!(sc.contains(&Annot::relaxed_atomic()));
        assert!(!sc.contains(&Annot::seq_cst()));
    }

    #[test]
    fn weakenings_of_rmw_pair_drop_the_pairing() {
        let e = catalog::monotonicity_cex_coalesced();
        let ws = weakenings(&e);
        assert!(ws.iter().any(|w| w.len() == 2 && w.rmw.is_empty()));
    }

    #[test]
    fn all_weakenings_are_well_formed() {
        for exec in [
            catalog::power_wrc_tprop1(),
            catalog::power_iriw_two_txns(),
            catalog::fig10_abstract(),
            catalog::example_1_1_concrete(false),
        ] {
            for w in weakenings(&exec) {
                assert!(check_well_formed(&w).is_ok());
            }
        }
    }
}

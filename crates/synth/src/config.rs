//! Configuration of the bounded exhaustive enumerator.

use tm_exec::{Annot, Fence};

use crate::hash::Fnv1a;

/// Bounds and feature switches for candidate-execution enumeration.
///
/// The enumerator is the explicit-search replacement for the paper's
/// SAT-based Memalloy backend (see DESIGN.md): it produces every well-formed
/// candidate execution within the bounds, up to thread/location symmetry.
///
/// Keep `max_events` small (≤ 5): the space grows super-exponentially, which
/// is also why the paper reports synthesis times in hours for 6–7 events.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthConfig {
    /// Maximum number of events per execution.
    pub max_events: usize,
    /// Maximum number of threads.
    pub max_threads: usize,
    /// Maximum number of distinct locations.
    pub max_locs: usize,
    /// Fence event kinds the enumerator may insert.
    pub fences: Vec<Fence>,
    /// Annotation choices for read events (always includes plain).
    pub read_annots: Vec<Annot>,
    /// Annotation choices for write events (always includes plain).
    pub write_annots: Vec<Annot>,
    /// Whether to enumerate address/data dependencies.
    pub dependencies: bool,
    /// Whether to enumerate read-modify-write pairs.
    pub rmws: bool,
    /// Whether to enumerate successful transactions.
    pub transactions: bool,
    /// Maximum number of transactions per execution.
    pub max_txns: usize,
}

impl SynthConfig {
    /// A configuration suitable for the x86 study of Table 1: plain accesses,
    /// `MFENCE`, RMWs, and transactions.
    pub fn x86(max_events: usize) -> SynthConfig {
        SynthConfig {
            max_events,
            max_threads: 3,
            max_locs: 3,
            fences: vec![Fence::MFence],
            read_annots: vec![Annot::PLAIN],
            write_annots: vec![Annot::PLAIN],
            dependencies: false,
            rmws: true,
            transactions: true,
            max_txns: 3,
        }
    }

    /// A configuration suitable for the Power study of Table 1: plain
    /// accesses, `sync`/`lwsync`, dependencies, RMWs, and transactions.
    pub fn power(max_events: usize) -> SynthConfig {
        SynthConfig {
            max_events,
            max_threads: 3,
            max_locs: 3,
            fences: vec![Fence::Sync, Fence::Lwsync],
            read_annots: vec![Annot::PLAIN],
            write_annots: vec![Annot::PLAIN],
            dependencies: true,
            rmws: true,
            transactions: true,
            max_txns: 3,
        }
    }

    /// A configuration suitable for the ARMv8 suites of §6.2: plain and
    /// acquire/release accesses, `DMB`, dependencies, RMWs, transactions.
    pub fn armv8(max_events: usize) -> SynthConfig {
        SynthConfig {
            max_events,
            max_threads: 3,
            max_locs: 3,
            fences: vec![Fence::Dmb],
            read_annots: vec![Annot::PLAIN, Annot::acquire()],
            write_annots: vec![Annot::PLAIN, Annot::release()],
            dependencies: true,
            rmws: true,
            transactions: true,
            max_txns: 3,
        }
    }

    /// A configuration suitable for the C++ study of §7–8: relaxed, acquire,
    /// release and seq_cst atomics plus non-atomics, and transactions.
    pub fn cpp(max_events: usize) -> SynthConfig {
        SynthConfig {
            max_events,
            max_threads: 3,
            max_locs: 3,
            fences: vec![],
            read_annots: vec![
                Annot::PLAIN,
                Annot::relaxed_atomic(),
                Annot::acquire_atomic(),
                Annot::seq_cst(),
            ],
            write_annots: vec![
                Annot::PLAIN,
                Annot::relaxed_atomic(),
                Annot::release_atomic(),
                Annot::seq_cst(),
            ],
            dependencies: false,
            rmws: false,
            transactions: true,
            max_txns: 2,
        }
    }

    /// Disables transactions (used when enumerating baseline behaviours).
    pub fn without_transactions(mut self) -> SynthConfig {
        self.transactions = false;
        self
    }

    /// A stable 64-bit fingerprint of every bound and feature switch.
    ///
    /// Two configurations fingerprint equal iff they enumerate the same
    /// space, across processes and machines — checkpointed sweeps bank
    /// work-unit results under ids derived from this value, and refuse to
    /// resume a journal written under a different configuration.
    pub fn fingerprint(&self) -> u64 {
        let annot_bits = |a: &Annot| {
            u8::from(a.acq) | u8::from(a.rel) << 1 | u8::from(a.sc) << 2 | u8::from(a.atomic) << 3
        };
        let mut h = Fnv1a::new();
        h.usize(self.max_events)
            .usize(self.max_threads)
            .usize(self.max_locs);
        h.usize(self.fences.len());
        for f in &self.fences {
            h.usize(f.index());
        }
        h.usize(self.read_annots.len());
        for a in &self.read_annots {
            h.byte(annot_bits(a));
        }
        h.usize(self.write_annots.len());
        for a in &self.write_annots {
            h.byte(annot_bits(a));
        }
        h.byte(u8::from(self.dependencies))
            .byte(u8::from(self.rmws))
            .byte(u8::from(self.transactions))
            .usize(self.max_txns);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sensible_bounds() {
        for cfg in [
            SynthConfig::x86(4),
            SynthConfig::power(4),
            SynthConfig::armv8(4),
            SynthConfig::cpp(4),
        ] {
            assert_eq!(cfg.max_events, 4);
            assert!(cfg.max_threads >= 2);
            assert!(cfg.max_locs >= 2);
            assert!(!cfg.read_annots.is_empty());
            assert!(!cfg.write_annots.is_empty());
            assert!(cfg.transactions);
        }
        assert!(SynthConfig::power(4).dependencies);
        assert!(!SynthConfig::x86(4).dependencies);
        assert!(!SynthConfig::x86(4).without_transactions().transactions);
    }

    #[test]
    fn fingerprints_separate_configurations() {
        let base = SynthConfig::x86(4);
        assert_eq!(base.fingerprint(), SynthConfig::x86(4).fingerprint());
        assert_ne!(base.fingerprint(), SynthConfig::x86(5).fingerprint());
        assert_ne!(base.fingerprint(), SynthConfig::power(4).fingerprint());
        assert_ne!(
            base.fingerprint(),
            base.clone().without_transactions().fingerprint()
        );
        let mut trimmed = SynthConfig::x86(4);
        trimmed.max_locs = 2;
        assert_ne!(base.fingerprint(), trimmed.fingerprint());
    }
}

//! Monotonicity of transaction introduction, enlargement and coalescing
//! (§8.1 and the first block of Table 2).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::ir::{txn_polarity, Polarity};
use tm_exec::{ExecView, Execution};
use tm_models::{MemoryModel, Target};
use tm_relation::per_classes;
use tm_synth::{enumerate_exact, SynthConfig};

/// The outcome of a bounded monotonicity check.
#[derive(Clone, Debug)]
pub struct MonotonicityResult {
    /// Name of the model checked.
    pub model: String,
    /// The event-count bound reached.
    pub max_events: usize,
    /// Number of (weaker, stronger) transaction pairs examined.
    pub pairs_checked: usize,
    /// A counterexample, if one exists within the bound: the first execution
    /// has *fewer* transaction edges and is inconsistent, the second has
    /// *more* and is consistent — so introducing/enlarging/coalescing the
    /// transaction resurrected a forbidden behaviour.
    ///
    /// The search runs on the parallel enumerator, so when counterexamples
    /// exist *which* one is reported (and the exact `pairs_checked` at the
    /// moment of the find) can vary between runs; whether one exists cannot.
    pub counterexample: Option<(Execution, Execution)>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl MonotonicityResult {
    /// True if no counterexample was found within the bound.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// The verdict of the *syntactic* monotonicity analysis: the polarity of the
/// transactional structure (`stxn`, `stxnat`, `tfence`) in each axiom body
/// of a model's IR table.
///
/// Shrinking an execution's transactions shrinks every axiom body whose
/// polarity is positive (or constant), and a sub-relation of an acyclic /
/// irreflexive / empty relation stays acyclic / irreflexive / empty — so if
/// *every* axiom is positive-or-constant, §8.1 monotonicity holds by
/// construction, with no enumeration at all. A mixed polarity (e.g. anything
/// built from `tfence`, whose definition mentions `stxn` under both signs)
/// is inconclusive, never wrong: x86+TM is mixed yet monotone, while Power
/// and ARMv8 are mixed and genuinely non-monotone.
#[derive(Clone, Debug)]
pub struct SyntacticMonotonicity {
    /// Name of the analysed model.
    pub model: String,
    /// The transactional polarity of each axiom body, in declaration order.
    /// Names are owned so the analysis runs on runtime-loaded models (e.g.
    /// `.cat` files elaborated by `tm-cat`) as well as the built-in catalog.
    pub per_axiom: Vec<(String, Polarity)>,
}

impl SyntacticMonotonicity {
    /// True if every axiom body is constant or positive in the transactional
    /// structure, i.e. monotonicity is derived from axiom structure alone.
    pub fn conclusive(&self) -> bool {
        self.per_axiom
            .iter()
            .all(|(_, p)| matches!(p, Polarity::Constant | Polarity::Positive))
    }

    /// The axioms that block a syntactic conclusion (negative or mixed).
    pub fn blocking_axioms(&self) -> Vec<&str> {
        self.per_axiom
            .iter()
            .filter(|(_, p)| matches!(p, Polarity::Negative | Polarity::Mixed))
            .map(|(name, _)| name.as_str())
            .collect()
    }
}

/// Derives §8.1 monotonicity (or fails to) from the *structure* of a
/// target's axiom table, by polarity analysis over the shared axiom IR.
///
/// Cross-check the inconclusive cases with the enumeration-based
/// [`check_monotonicity`]; the conclusive ones need no search.
pub fn syntactic_monotonicity(target: Target) -> SyntacticMonotonicity {
    let cat = tm_models::ir::catalog();
    syntactic_monotonicity_of(cat.model(target), cat.pool())
}

/// [`syntactic_monotonicity`] over an arbitrary axiom table and the pool its
/// bodies are interned in — the entry point for user-defined models, whether
/// built in Rust ([`tm_models::ir::IrModel`]) or loaded from `.cat` text.
/// Pass `model.table()` and `model.pool()`.
pub fn syntactic_monotonicity_of(
    table: &tm_models::ir::ModelAxioms,
    pool: &tm_exec::ir::IrPool,
) -> SyntacticMonotonicity {
    SyntacticMonotonicity {
        model: table.name().to_string(),
        per_axiom: table
            .axioms()
            .iter()
            .map(|axiom| (axiom.name.to_string(), txn_polarity(pool, axiom.body)))
            .collect(),
    }
}

/// Ways of *reducing* the transactions of an execution: the inverses of
/// introducing a transaction, enlarging one, and coalescing two.
///
/// Monotonicity states that going the other way (from the returned execution
/// back to `exec`) can never turn an inconsistent execution consistent.
pub fn transaction_reductions(exec: &Execution) -> Vec<Execution> {
    let mut out = Vec::new();
    let classes = exec.txn_classes();
    for class in &classes {
        // Inverse of *introducing*: drop the whole transaction.
        let mut dropped = exec.clone();
        for &a in class {
            for b in 0..exec.len() {
                dropped.stxn.remove(a, b);
                dropped.stxn.remove(b, a);
                dropped.stxnat.remove(a, b);
                dropped.stxnat.remove(b, a);
            }
        }
        out.push(dropped);

        // Inverse of *enlarging*: drop the first or last event of the class.
        if class.len() >= 2 {
            let mut sorted = class.clone();
            sorted.sort_by_key(|&e| exec.po.predecessors(e).count());
            for &end in [sorted[0], *sorted.last().expect("non-empty class")].iter() {
                let mut shrunk = exec.clone();
                for b in 0..exec.len() {
                    shrunk.stxn.remove(end, b);
                    shrunk.stxn.remove(b, end);
                    shrunk.stxnat.remove(end, b);
                    shrunk.stxnat.remove(b, end);
                }
                out.push(shrunk);
            }
        }

        // Inverse of *coalescing*: split the class in two at each internal
        // program-order boundary.
        if class.len() >= 2 {
            let mut sorted = class.clone();
            sorted.sort_by_key(|&e| exec.po.predecessors(e).count());
            for cut in 1..sorted.len() {
                let (left, right) = sorted.split_at(cut);
                let mut split = exec.clone();
                for &a in left {
                    for &b in right {
                        split.stxn.remove(a, b);
                        split.stxn.remove(b, a);
                        split.stxnat.remove(a, b);
                        split.stxnat.remove(b, a);
                    }
                }
                out.push(split);
            }
        }
    }
    out
}

/// Checks monotonicity of `model` for every execution with up to
/// `max_events` events under `config`: no transaction reduction of a
/// consistent execution may be inconsistent.
pub fn check_monotonicity(
    model: &dyn MemoryModel,
    config: &SynthConfig,
    max_events: usize,
) -> MonotonicityResult {
    let start = Instant::now();
    let pairs_checked = AtomicUsize::new(0);
    let found = AtomicBool::new(false);
    let counterexample: Mutex<Option<(Execution, Execution)>> = Mutex::new(None);

    for n in 2..=max_events {
        if found.load(Ordering::Relaxed) {
            break;
        }
        enumerate_exact(config, n, |exec| {
            if found.load(Ordering::Relaxed) || per_classes(&exec.stxn).is_empty() {
                return;
            }
            if !model.is_consistent_view(&ExecView::new(exec)) {
                return;
            }
            for reduced in transaction_reductions(exec) {
                pairs_checked.fetch_add(1, Ordering::Relaxed);
                if !model.is_consistent_view(&ExecView::new(&reduced)) {
                    found.store(true, Ordering::Relaxed);
                    counterexample
                        .lock()
                        .unwrap()
                        .get_or_insert_with(|| (reduced.clone(), exec.clone()));
                    return;
                }
            }
        });
    }

    MonotonicityResult {
        model: model.name().to_string(),
        max_events,
        pairs_checked: pairs_checked.into_inner(),
        counterexample: counterexample.into_inner().unwrap(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;
    use tm_models::{Armv8Model, CppModel, PowerModel, X86Model};

    #[test]
    fn reductions_cover_drop_shrink_and_split() {
        let exec = catalog::monotonicity_cex_coalesced();
        let reductions = transaction_reductions(&exec);
        // Drop the whole class, shrink at both ends, split at the single
        // internal boundary.
        assert_eq!(reductions.len(), 4);
        assert!(reductions.iter().any(|r| r.txn_classes().is_empty()));
        assert!(reductions.iter().any(|r| r.txn_classes().len() == 2));
    }

    #[test]
    fn power_and_armv8_are_not_monotonic() {
        // Table 2: a 2-event counterexample (the RMW straddling a
        // transaction boundary) exists for Power and ARMv8.
        let cfg = SynthConfig::power(2);
        for model in [
            Box::new(PowerModel::tm()) as Box<dyn MemoryModel>,
            Box::new(Armv8Model::tm()),
        ] {
            let result = check_monotonicity(model.as_ref(), &cfg, 2);
            assert!(
                !result.holds(),
                "{} should have a counterexample",
                result.model
            );
            let (weaker, stronger) = result.counterexample.as_ref().unwrap();
            assert!(!model.is_consistent(weaker));
            assert!(model.is_consistent(stronger));
            assert_eq!(weaker.events, stronger.events);
            assert!(!weaker.rmw.is_empty(), "the counterexample involves an RMW");
        }
    }

    #[test]
    fn x86_is_monotonic_at_small_bounds() {
        // Table 2: no counterexample for x86 (checked to 6 events in the
        // paper; we check a smaller bound here and a larger one in the
        // benchmark harness).
        let cfg = SynthConfig::x86(3);
        let result = check_monotonicity(&X86Model::tm(), &cfg, 3);
        assert!(result.holds(), "{:?}", result.counterexample);
        assert!(result.pairs_checked > 0);
    }

    #[test]
    fn cpp_is_monotonic_at_small_bounds() {
        let mut cfg = SynthConfig::cpp(3);
        // Keep the space small: relaxed atomics and plain accesses only.
        cfg.read_annots.truncate(2);
        cfg.write_annots.truncate(2);
        let result = check_monotonicity(&CppModel::tm(), &cfg, 3);
        assert!(result.holds(), "{:?}", result.counterexample);
    }

    #[test]
    fn syntactic_analysis_is_conclusive_exactly_for_transaction_free_tables() {
        // Baseline models never mention the transactional structure, so
        // their monotonicity is derived from axiom structure alone.
        for target in [
            Target::Sc,
            Target::X86,
            Target::Power,
            Target::Armv8,
            Target::Cpp,
        ] {
            let syn = syntactic_monotonicity(target);
            assert!(syn.conclusive(), "{}: {:?}", syn.model, syn.per_axiom);
            assert!(syn.blocking_axioms().is_empty());
        }
        // Every transactional table goes through `tfence` or a lift, whose
        // polarity is mixed, so the syntactic criterion must stay silent —
        // in particular it must NOT claim monotonicity for Power/ARMv8,
        // which have real counterexamples (Table 2).
        for target in Target::TRANSACTIONAL {
            let syn = syntactic_monotonicity(target);
            assert!(!syn.conclusive(), "{}: {:?}", syn.model, syn.per_axiom);
            assert!(!syn.blocking_axioms().is_empty());
        }
    }

    #[test]
    fn syntactic_verdicts_are_cross_checked_against_enumeration() {
        // Wherever the polarity analysis concludes monotonicity, the
        // enumeration-based check must find no counterexample; where a
        // counterexample is known to exist, the analysis must have been
        // inconclusive (a conclusive verdict there would be a soundness bug
        // in the polarity rules).
        for target in [Target::X86, Target::PowerTm, Target::Armv8Tm] {
            let syn = syntactic_monotonicity(target);
            let cfg = SynthConfig::power(2);
            let result = check_monotonicity(target.model().as_ref(), &cfg, 2);
            if syn.conclusive() {
                assert!(
                    result.holds(),
                    "{}: syntactically monotone but enumeration disagrees",
                    syn.model
                );
            }
            if !result.holds() {
                assert!(
                    !syn.conclusive(),
                    "{}: counterexample exists but analysis claimed monotonicity",
                    syn.model
                );
            }
        }
    }

    #[test]
    fn the_paper_counterexample_is_a_reduction_pair() {
        let split = catalog::monotonicity_cex_split();
        let coalesced = catalog::monotonicity_cex_coalesced();
        let reductions = transaction_reductions(&coalesced);
        assert!(
            reductions.iter().any(|r| r.stxn == split.stxn),
            "splitting the coalesced transaction reproduces the paper's counterexample"
        );
    }
}

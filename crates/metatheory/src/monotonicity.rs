//! Monotonicity of transaction introduction, enlargement and coalescing
//! (§8.1 and the first block of Table 2).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::{ExecView, Execution};
use tm_models::MemoryModel;
use tm_relation::per_classes;
use tm_synth::{enumerate_exact, SynthConfig};

/// The outcome of a bounded monotonicity check.
#[derive(Clone, Debug)]
pub struct MonotonicityResult {
    /// Name of the model checked.
    pub model: String,
    /// The event-count bound reached.
    pub max_events: usize,
    /// Number of (weaker, stronger) transaction pairs examined.
    pub pairs_checked: usize,
    /// A counterexample, if one exists within the bound: the first execution
    /// has *fewer* transaction edges and is inconsistent, the second has
    /// *more* and is consistent — so introducing/enlarging/coalescing the
    /// transaction resurrected a forbidden behaviour.
    ///
    /// The search runs on the parallel enumerator, so when counterexamples
    /// exist *which* one is reported (and the exact `pairs_checked` at the
    /// moment of the find) can vary between runs; whether one exists cannot.
    pub counterexample: Option<(Execution, Execution)>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl MonotonicityResult {
    /// True if no counterexample was found within the bound.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Ways of *reducing* the transactions of an execution: the inverses of
/// introducing a transaction, enlarging one, and coalescing two.
///
/// Monotonicity states that going the other way (from the returned execution
/// back to `exec`) can never turn an inconsistent execution consistent.
pub fn transaction_reductions(exec: &Execution) -> Vec<Execution> {
    let mut out = Vec::new();
    let classes = exec.txn_classes();
    for class in &classes {
        // Inverse of *introducing*: drop the whole transaction.
        let mut dropped = exec.clone();
        for &a in class {
            for b in 0..exec.len() {
                dropped.stxn.remove(a, b);
                dropped.stxn.remove(b, a);
                dropped.stxnat.remove(a, b);
                dropped.stxnat.remove(b, a);
            }
        }
        out.push(dropped);

        // Inverse of *enlarging*: drop the first or last event of the class.
        if class.len() >= 2 {
            let mut sorted = class.clone();
            sorted.sort_by_key(|&e| exec.po.predecessors(e).count());
            for &end in [sorted[0], *sorted.last().expect("non-empty class")].iter() {
                let mut shrunk = exec.clone();
                for b in 0..exec.len() {
                    shrunk.stxn.remove(end, b);
                    shrunk.stxn.remove(b, end);
                    shrunk.stxnat.remove(end, b);
                    shrunk.stxnat.remove(b, end);
                }
                out.push(shrunk);
            }
        }

        // Inverse of *coalescing*: split the class in two at each internal
        // program-order boundary.
        if class.len() >= 2 {
            let mut sorted = class.clone();
            sorted.sort_by_key(|&e| exec.po.predecessors(e).count());
            for cut in 1..sorted.len() {
                let (left, right) = sorted.split_at(cut);
                let mut split = exec.clone();
                for &a in left {
                    for &b in right {
                        split.stxn.remove(a, b);
                        split.stxn.remove(b, a);
                        split.stxnat.remove(a, b);
                        split.stxnat.remove(b, a);
                    }
                }
                out.push(split);
            }
        }
    }
    out
}

/// Checks monotonicity of `model` for every execution with up to
/// `max_events` events under `config`: no transaction reduction of a
/// consistent execution may be inconsistent.
pub fn check_monotonicity(
    model: &dyn MemoryModel,
    config: &SynthConfig,
    max_events: usize,
) -> MonotonicityResult {
    let start = Instant::now();
    let pairs_checked = AtomicUsize::new(0);
    let found = AtomicBool::new(false);
    let counterexample: Mutex<Option<(Execution, Execution)>> = Mutex::new(None);

    for n in 2..=max_events {
        if found.load(Ordering::Relaxed) {
            break;
        }
        enumerate_exact(config, n, |exec| {
            if found.load(Ordering::Relaxed) || per_classes(&exec.stxn).is_empty() {
                return;
            }
            if !model.is_consistent_view(&ExecView::new(exec)) {
                return;
            }
            for reduced in transaction_reductions(exec) {
                pairs_checked.fetch_add(1, Ordering::Relaxed);
                if !model.is_consistent_view(&ExecView::new(&reduced)) {
                    found.store(true, Ordering::Relaxed);
                    counterexample
                        .lock()
                        .unwrap()
                        .get_or_insert_with(|| (reduced.clone(), exec.clone()));
                    return;
                }
            }
        });
    }

    MonotonicityResult {
        model: model.name().to_string(),
        max_events,
        pairs_checked: pairs_checked.into_inner(),
        counterexample: counterexample.into_inner().unwrap(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;
    use tm_models::{Armv8Model, CppModel, PowerModel, X86Model};

    #[test]
    fn reductions_cover_drop_shrink_and_split() {
        let exec = catalog::monotonicity_cex_coalesced();
        let reductions = transaction_reductions(&exec);
        // Drop the whole class, shrink at both ends, split at the single
        // internal boundary.
        assert_eq!(reductions.len(), 4);
        assert!(reductions.iter().any(|r| r.txn_classes().is_empty()));
        assert!(reductions.iter().any(|r| r.txn_classes().len() == 2));
    }

    #[test]
    fn power_and_armv8_are_not_monotonic() {
        // Table 2: a 2-event counterexample (the RMW straddling a
        // transaction boundary) exists for Power and ARMv8.
        let cfg = SynthConfig::power(2);
        for model in [
            Box::new(PowerModel::tm()) as Box<dyn MemoryModel>,
            Box::new(Armv8Model::tm()),
        ] {
            let result = check_monotonicity(model.as_ref(), &cfg, 2);
            assert!(
                !result.holds(),
                "{} should have a counterexample",
                result.model
            );
            let (weaker, stronger) = result.counterexample.as_ref().unwrap();
            assert!(!model.is_consistent(weaker));
            assert!(model.is_consistent(stronger));
            assert_eq!(weaker.events, stronger.events);
            assert!(!weaker.rmw.is_empty(), "the counterexample involves an RMW");
        }
    }

    #[test]
    fn x86_is_monotonic_at_small_bounds() {
        // Table 2: no counterexample for x86 (checked to 6 events in the
        // paper; we check a smaller bound here and a larger one in the
        // benchmark harness).
        let cfg = SynthConfig::x86(3);
        let result = check_monotonicity(&X86Model::tm(), &cfg, 3);
        assert!(result.holds(), "{:?}", result.counterexample);
        assert!(result.pairs_checked > 0);
    }

    #[test]
    fn cpp_is_monotonic_at_small_bounds() {
        let mut cfg = SynthConfig::cpp(3);
        // Keep the space small: relaxed atomics and plain accesses only.
        cfg.read_annots.truncate(2);
        cfg.write_annots.truncate(2);
        let result = check_monotonicity(&CppModel::tm(), &cfg, 3);
        assert!(result.holds(), "{:?}", result.counterexample);
    }

    #[test]
    fn the_paper_counterexample_is_a_reduction_pair() {
        let split = catalog::monotonicity_cex_split();
        let coalesced = catalog::monotonicity_cex_coalesced();
        let reductions = transaction_reductions(&coalesced);
        assert!(
            reductions.iter().any(|r| r.stxn == split.stxn),
            "splitting the coalesced transaction reproduces the paper's counterexample"
        );
    }
}

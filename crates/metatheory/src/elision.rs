//! Checking lock elision against the hardware TM models (§8.3, Table 3,
//! bottom block of Table 2).

use std::time::{Duration, Instant};

use tm_exec::{Annot, Event, Execution, ExecutionBuilder, Fence, LockCall};
use tm_litmus::Arch;
use tm_models::{Armv8Model, MemoryModel, PowerModel, X86Model};

/// The location used as the elided mutex in concrete executions.
pub const LOCK_VAR: u32 = 9;

/// One body shape for a critical region in the abstract-execution family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrBody {
    /// A single read of `x`.
    Read,
    /// A single write to `x`.
    Write,
    /// A read of `x` followed by a dependent write to `x` (the `x ← x + 2`
    /// of Example 1.1).
    ReadThenWrite,
    /// Two writes to `x` (the Appendix B shape).
    WriteTwice,
}

impl CrBody {
    /// Every body shape.
    pub const ALL: [CrBody; 4] = [
        CrBody::Read,
        CrBody::Write,
        CrBody::ReadThenWrite,
        CrBody::WriteTwice,
    ];

    fn emit(self, b: &mut ExecutionBuilder, thread: u32) -> Vec<usize> {
        match self {
            CrBody::Read => vec![b.push(Event::read(thread, 0))],
            CrBody::Write => vec![b.push(Event::write(thread, 0))],
            CrBody::ReadThenWrite => {
                let r = b.push(Event::read(thread, 0));
                let w = b.push(Event::write(thread, 0));
                b.data(r, w);
                vec![r, w]
            }
            CrBody::WriteTwice => {
                let w1 = b.push(Event::write(thread, 0));
                let w2 = b.push(Event::write(thread, 0));
                vec![w1, w2]
            }
        }
    }
}

/// Builds the family of *abstract* executions used by the lock-elision
/// check: thread 0 runs `body0` inside an ordinary locked critical region,
/// thread 1 runs `body1` inside an elided one, and every combination of
/// reads-from and coherence choices over `x` is enumerated.
pub fn abstract_family(body0: CrBody, body1: CrBody) -> Vec<Execution> {
    // Enumerate rf/co choices by index.
    let build = |rf_choice: &[Option<usize>], co_perm: &[usize]| -> Option<Execution> {
        let mut b = ExecutionBuilder::new();
        let l = b.push(Event::lock_call(0, LockCall::Lock));
        let body0_ids = body0.emit(&mut b, 0);
        let u = b.push(Event::lock_call(0, LockCall::Unlock));
        let lt = b.push(Event::lock_call(1, LockCall::TxLock));
        let body1_ids = body1.emit(&mut b, 1);
        let ut = b.push(Event::lock_call(1, LockCall::TxUnlock));
        let mut cr0 = vec![l];
        cr0.extend(&body0_ids);
        cr0.push(u);
        let mut cr1 = vec![lt];
        cr1.extend(&body1_ids);
        cr1.push(ut);
        b.cr(&cr0);
        b.txn_cr(&cr1);

        let all_ids: Vec<usize> = body0_ids.iter().chain(&body1_ids).copied().collect();
        let reads: Vec<usize> = all_ids
            .iter()
            .copied()
            .filter(|&e| matches!(body_kind(&b, e), Kind::Read))
            .collect();
        let writes: Vec<usize> = all_ids
            .iter()
            .copied()
            .filter(|&e| matches!(body_kind(&b, e), Kind::Write))
            .collect();
        for (i, &r) in reads.iter().enumerate() {
            if let Some(w_idx) = rf_choice[i] {
                if w_idx >= writes.len() {
                    return None;
                }
                b.rf(writes[w_idx], r);
            }
        }
        let co_order: Vec<usize> = co_perm.iter().map(|&i| writes[i]).collect();
        b.co_order(&co_order);
        b.build().ok()
    };

    // Count reads/writes for the choice spaces.
    let reads_in = |body: CrBody| match body {
        CrBody::Read => 1,
        CrBody::ReadThenWrite => 1,
        _ => 0,
    };
    let writes_in = |body: CrBody| match body {
        CrBody::Write => 1,
        CrBody::ReadThenWrite => 1,
        CrBody::WriteTwice => 2,
        CrBody::Read => 0,
    };
    let n_reads = reads_in(body0) + reads_in(body1);
    let n_writes = writes_in(body0) + writes_in(body1);

    let mut rf_choices: Vec<Vec<Option<usize>>> = vec![vec![]];
    for _ in 0..n_reads {
        let mut next = Vec::new();
        for prefix in &rf_choices {
            for choice in std::iter::once(None).chain((0..n_writes).map(Some)) {
                let mut c = prefix.clone();
                c.push(choice);
                next.push(c);
            }
        }
        rf_choices = next;
    }
    let co_perms = permutations(n_writes);

    let mut out = Vec::new();
    for rf in &rf_choices {
        for co in &co_perms {
            if let Some(exec) = build(rf, co) {
                out.push(exec);
            }
        }
    }
    out
}

enum Kind {
    Read,
    Write,
    Other,
}

fn body_kind(b: &ExecutionBuilder, _e: usize) -> Kind {
    // The builder does not expose its events, so rebuild cheaply: the caller
    // only uses this on freshly pushed accesses, which we track by building
    // an unchecked snapshot.
    let exec = b.build_unchecked();
    match exec.event(_e).kind {
        tm_exec::EventKind::Read(_) => Kind::Read,
        tm_exec::EventKind::Write(_) => Kind::Write,
        _ => Kind::Other,
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(remaining: Vec<usize>, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for (i, &x) in remaining.iter().enumerate() {
            let mut rest = remaining.clone();
            rest.remove(i);
            prefix.push(x);
            go(rest, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go((0..n).collect(), &mut Vec::new(), &mut out);
    out
}

/// Applies the lock-elision mapping π of Table 3 to an abstract execution:
/// ordinary `lock()`/`unlock()` calls become the architecture's recommended
/// spinlock acquire/release sequences on the lock variable, elided `lock()`
/// calls become a plain read of the lock variable inside the transaction,
/// and elided `unlock()` calls vanish.
///
/// `dmb_fix` applies the §1.1 repair on ARMv8 (a `DMB` appended to
/// `lock()`).
pub fn elide(abstract_exec: &Execution, arch: Arch, dmb_fix: bool) -> Execution {
    let mut b = ExecutionBuilder::new();
    let n = abstract_exec.len();
    let mut map: Vec<Option<usize>> = vec![None; n];

    for t in 0..abstract_exec.thread_count() {
        let mut ids: Vec<usize> = (0..n)
            .filter(|&e| abstract_exec.event(e).thread.0 as usize == t)
            .collect();
        ids.sort_by_key(|&e| abstract_exec.po.predecessors(e).count());

        // Is this thread's critical region elided?
        let elided = ids.iter().any(|&e| {
            abstract_exec.event(e).kind == tm_exec::EventKind::LockCall(LockCall::TxLock)
        });
        let thread = t as u32;
        let mut txn_members: Vec<usize> = Vec::new();
        let mut ctrl_sources: Vec<usize> = Vec::new();

        for e in ids {
            match abstract_exec.event(e).kind {
                tm_exec::EventKind::LockCall(LockCall::Lock) => {
                    // The recommended spinlock acquisition.
                    if arch == Arch::X86 {
                        // Test-and-test-and-set: an initial plain read.
                        b.push(Event::read(thread, LOCK_VAR));
                    }
                    let acquire_annot = if arch == Arch::Armv8 {
                        Annot::acquire()
                    } else {
                        Annot::PLAIN
                    };
                    let lr = b.push(Event::read(thread, LOCK_VAR).with_annot(acquire_annot));
                    let sw = b.push(Event::write(thread, LOCK_VAR));
                    b.rmw(lr, sw);
                    b.ctrl(lr, sw);
                    ctrl_sources.push(sw);
                    if arch == Arch::Power {
                        b.push(Event::fence(thread, Fence::Isync));
                    }
                    if arch == Arch::Armv8 && dmb_fix {
                        b.push(Event::fence(thread, Fence::Dmb));
                    }
                    map[e] = Some(sw);
                }
                tm_exec::EventKind::LockCall(LockCall::Unlock) => {
                    if arch == Arch::Power {
                        b.push(Event::fence(thread, Fence::Sync));
                    }
                    let annot = if arch == Arch::Armv8 {
                        Annot::release()
                    } else {
                        Annot::PLAIN
                    };
                    let uw = b.push(Event::write(thread, LOCK_VAR).with_annot(annot));
                    map[e] = Some(uw);
                }
                tm_exec::EventKind::LockCall(LockCall::TxLock) => {
                    // The transaction starts by reading the lock variable and
                    // seeing it free (TxnReadsLockFree: no rf edge is added).
                    let r = b.push(Event::read(thread, LOCK_VAR));
                    txn_members.push(r);
                    map[e] = Some(r);
                }
                tm_exec::EventKind::LockCall(LockCall::TxUnlock) => {
                    // Vanishes: there are no explicit txbegin/txend events.
                }
                _ => {
                    let new = b.push(*abstract_exec.event(e));
                    // The spinlock's conditional branch orders every later
                    // event of the critical region after the store-exclusive
                    // (footnote 3: ctrl may begin at a store-exclusive).
                    for &src in &ctrl_sources {
                        b.ctrl(src, new);
                    }
                    if elided {
                        txn_members.push(new);
                    }
                    map[e] = Some(new);
                }
            }
        }
        if elided && !txn_members.is_empty() {
            b.txn(&txn_members);
        }
    }

    // Carry over the data relations on x, and order the lock-variable writes
    // of each locked CR (store-exclusive before release store) — co within a
    // thread follows program order by coherence.
    for (a, c) in abstract_exec.rf.iter() {
        if let (Some(x), Some(y)) = (map[a], map[c]) {
            b.rf(x, y);
        }
    }
    for (a, c) in abstract_exec.co.iter() {
        if let (Some(x), Some(y)) = (map[a], map[c]) {
            b.co(x, y);
        }
    }
    for (a, c) in abstract_exec.data.iter() {
        if let (Some(x), Some(y)) = (map[a], map[c]) {
            b.data(x, y);
        }
    }
    // Lock-variable coherence: the acquire's store-exclusive precedes the
    // release store of the same critical region.
    let snapshot = b.build_unchecked();
    let lock_writes: Vec<usize> = (0..snapshot.len())
        .filter(|&e| {
            snapshot.event(e).is_write() && snapshot.event(e).loc() == Some(tm_exec::Loc(LOCK_VAR))
        })
        .collect();
    b.co_order(&lock_writes);

    b.build()
        .expect("the lock-elision mapping of a well-formed abstract execution is well-formed")
}

/// The outcome of the lock-elision soundness check for one architecture.
#[derive(Clone, Debug)]
pub struct ElisionResult {
    /// The architecture checked.
    pub arch: Arch,
    /// Whether the §1.1 DMB repair was applied (ARMv8 only).
    pub dmb_fix: bool,
    /// Number of abstract executions examined.
    pub checked: usize,
    /// A witness of unsoundness, if found: an abstract execution that
    /// violates critical-region serialisability whose implementation the
    /// architecture's TM model nevertheless allows.
    pub counterexample: Option<(Execution, Execution)>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl ElisionResult {
    /// True if no unsoundness witness was found.
    pub fn sound(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Checks lock elision on `arch` over the abstract family of two critical
/// regions (one locked, one elided) with every combination of body shapes
/// and communication choices.
pub fn check_lock_elision(arch: Arch, dmb_fix: bool) -> ElisionResult {
    let start = Instant::now();
    let spec: Box<dyn MemoryModel> = match arch {
        Arch::X86 => Box::new(X86Model::tm().with_cr_order()),
        Arch::Power => Box::new(PowerModel::tm().with_cr_order()),
        Arch::Armv8 => Box::new(Armv8Model::tm().with_cr_order()),
        Arch::Cpp => Box::new(X86Model::tm().with_cr_order()),
    };
    let base: Box<dyn MemoryModel> = match arch {
        Arch::X86 => Box::new(X86Model::tm()),
        Arch::Power => Box::new(PowerModel::tm()),
        Arch::Armv8 => Box::new(Armv8Model::tm()),
        Arch::Cpp => Box::new(X86Model::tm()),
    };
    let impl_model: Box<dyn MemoryModel> = match arch {
        Arch::X86 => Box::new(X86Model::tm()),
        Arch::Power => Box::new(PowerModel::tm()),
        Arch::Armv8 => Box::new(Armv8Model::tm()),
        Arch::Cpp => Box::new(X86Model::tm()),
    };

    let mut checked = 0usize;
    let mut counterexample = None;
    'outer: for body0 in CrBody::ALL {
        for body1 in CrBody::ALL {
            for abstract_exec in abstract_family(body0, body1) {
                checked += 1;
                // The abstract execution must be a mutual-exclusion
                // violation: allowed by the plain architecture model but
                // rejected once critical regions must serialise.
                if !base.is_consistent(&abstract_exec) {
                    continue;
                }
                let verdict = spec.check(&abstract_exec);
                if !verdict.violates("CROrder") {
                    continue;
                }
                let concrete = elide(&abstract_exec, arch, dmb_fix);
                if impl_model.is_consistent(&concrete) {
                    counterexample = Some((abstract_exec, concrete));
                    break 'outer;
                }
            }
        }
    }

    ElisionResult {
        arch,
        dmb_fix,
        checked,
        counterexample,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn abstract_family_contains_the_fig10_shape() {
        let family = abstract_family(CrBody::ReadThenWrite, CrBody::Write);
        assert!(!family.is_empty());
        let fig10 = catalog::fig10_abstract();
        assert!(
            family
                .iter()
                .any(|e| tm_synth::canonical_signature(e) == tm_synth::canonical_signature(&fig10)),
            "the enumerated family must include the Fig. 10 abstract execution"
        );
    }

    #[test]
    fn elide_reproduces_the_example_1_1_concrete_execution_on_armv8() {
        let concrete = elide(&catalog::fig10_abstract(), Arch::Armv8, false);
        // Same events and verdict as the hand-written catalog entry.
        assert_eq!(
            Armv8Model::tm().is_consistent(&concrete),
            Armv8Model::tm().is_consistent(&catalog::example_1_1_concrete(false))
        );
        assert!(Armv8Model::tm().is_consistent(&concrete));
        // With the DMB fix the witness disappears.
        let fixed = elide(&catalog::fig10_abstract(), Arch::Armv8, true);
        assert!(!Armv8Model::tm().is_consistent(&fixed));
    }

    #[test]
    fn armv8_lock_elision_is_unsound() {
        let result = check_lock_elision(Arch::Armv8, false);
        assert!(!result.sound(), "expected the Example 1.1 witness");
        let (abstract_exec, concrete) = result.counterexample.as_ref().unwrap();
        assert!(Armv8Model::tm()
            .with_cr_order()
            .check(abstract_exec)
            .violates("CROrder"));
        assert!(Armv8Model::tm().is_consistent(concrete));
    }

    #[test]
    fn x86_lock_elision_has_no_witness_in_the_family() {
        let result = check_lock_elision(Arch::X86, false);
        assert!(result.sound(), "{:?}", result.counterexample);
        assert!(result.checked > 0);
    }

    #[test]
    fn elided_executions_are_well_formed_across_architectures() {
        for arch in [Arch::X86, Arch::Power, Arch::Armv8] {
            for dmb in [false, true] {
                let concrete = elide(&catalog::fig10_abstract(), arch, dmb);
                assert!(tm_exec::check_well_formed(&concrete).is_ok());
                assert!(!concrete.txn_classes().is_empty());
            }
        }
    }
}

//! Bounded mechanical checks of the paper's two hand-proved theorems about
//! the C++ TM model (§7).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::{ExecView, Execution};
use tm_models::{isolation, CppModel, MemoryModel, ScModel};
use tm_synth::{enumerate_exact, SynthConfig};

/// The outcome of a bounded theorem check.
#[derive(Clone, Debug)]
pub struct TheoremResult {
    /// Which theorem was checked (`"7.2"` or `"7.3"`).
    pub theorem: &'static str,
    /// The event-count bound reached.
    pub max_events: usize,
    /// Number of executions that satisfied the theorem's hypotheses.
    pub instances: usize,
    /// A counterexample execution, if any hypothesis-satisfying execution
    /// violated the conclusion. As with the other parallel searches, which
    /// counterexample is reported is run-dependent; existence is not.
    pub counterexample: Option<Execution>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl TheoremResult {
    /// True if the theorem held on every instance within the bound.
    pub fn holds(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Theorem 7.2 (strong isolation for atomic transactions): in a race-free,
/// C++-consistent execution whose atomic transactions contain no atomic
/// operations, `stronglift(com, stxnat)` is acyclic.
///
/// The check marks every transaction produced by the enumerator as atomic
/// (`stxnat = stxn`), which is the worst case for the theorem.
pub fn check_theorem_7_2(config: &SynthConfig, max_events: usize) -> TheoremResult {
    let start = Instant::now();
    let cpp = CppModel::tm();
    let instances = AtomicUsize::new(0);
    let found = AtomicBool::new(false);
    let counterexample: Mutex<Option<Execution>> = Mutex::new(None);

    for n in 2..=max_events {
        if found.load(Ordering::Relaxed) {
            break;
        }
        enumerate_exact(config, n, |exec| {
            if found.load(Ordering::Relaxed) || exec.txn_classes().is_empty() {
                return;
            }
            // Treat every transaction as atomic.
            let mut exec = exec.clone();
            exec.stxnat = exec.stxn.clone();
            let view = ExecView::new(&exec);
            if !cpp.atomic_txns_contain_no_atomics_view(&view) {
                return;
            }
            if !cpp.is_consistent_view(&view) || cpp.is_racy_view(&view) {
                return;
            }
            instances.fetch_add(1, Ordering::Relaxed);
            if !isolation::strong_isolation_atomic_view(&view) {
                found.store(true, Ordering::Relaxed);
                drop(view);
                counterexample.lock().unwrap().get_or_insert(exec);
            }
        });
    }

    TheoremResult {
        theorem: "7.2",
        max_events,
        instances: instances.into_inner(),
        counterexample: counterexample.into_inner().unwrap(),
        elapsed: start.elapsed(),
    }
}

/// Theorem 7.3 (transactional SC-DRF): a C++-consistent execution with no
/// relaxed transactions (`stxn = stxnat`), no non-SC atomics (`Ato = SC`)
/// and no data races is consistent under TSC.
pub fn check_theorem_7_3(config: &SynthConfig, max_events: usize) -> TheoremResult {
    let start = Instant::now();
    let cpp = CppModel::tm();
    let tsc = ScModel::tsc();
    let instances = AtomicUsize::new(0);
    let found = AtomicBool::new(false);
    let counterexample: Mutex<Option<Execution>> = Mutex::new(None);

    for n in 2..=max_events {
        if found.load(Ordering::Relaxed) {
            break;
        }
        enumerate_exact(config, n, |exec| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            // Hypotheses: every transaction atomic, atomics all SC, no
            // atomics inside atomic transactions, race free, consistent.
            let mut exec = exec.clone();
            exec.stxnat = exec.stxn.clone();
            let view = ExecView::new(&exec);
            if *view.atomics() != *view.sc_events() {
                return;
            }
            if !cpp.atomic_txns_contain_no_atomics_view(&view) {
                return;
            }
            if !cpp.is_consistent_view(&view) || cpp.is_racy_view(&view) {
                return;
            }
            instances.fetch_add(1, Ordering::Relaxed);
            if !tsc.is_consistent_view(&view) {
                found.store(true, Ordering::Relaxed);
                drop(view);
                counterexample.lock().unwrap().get_or_insert(exec);
            }
        });
    }

    TheoremResult {
        theorem: "7.3",
        max_events,
        instances: instances.into_inner(),
        counterexample: counterexample.into_inner().unwrap(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::Annot;

    fn cpp_config(events: usize) -> SynthConfig {
        let mut cfg = SynthConfig::cpp(events);
        // Keep the space tractable for unit tests: plain and seq_cst
        // accesses only (the benchmark harness uses the full configuration).
        cfg.read_annots = vec![Annot::PLAIN, Annot::seq_cst()];
        cfg.write_annots = vec![Annot::PLAIN, Annot::seq_cst()];
        cfg
    }

    #[test]
    fn theorem_7_2_holds_up_to_three_events() {
        let result = check_theorem_7_2(&cpp_config(3), 3);
        assert!(result.holds(), "{:?}", result.counterexample);
        assert!(result.instances > 0, "the hypotheses must be satisfiable");
    }

    #[test]
    fn theorem_7_3_holds_up_to_three_events() {
        let result = check_theorem_7_3(&cpp_config(3), 3);
        assert!(result.holds(), "{:?}", result.counterexample);
        assert!(result.instances > 0);
    }

    #[test]
    fn theorem_7_3_hypotheses_matter() {
        // Dropping the race-freedom hypothesis breaks the conclusion: the
        // plain (racy) store-buffering execution is C++-consistent but not
        // TSC-consistent.
        let sb = tm_exec::catalog::sb();
        assert!(CppModel::tm().is_consistent(&sb));
        assert!(CppModel::tm().is_racy(&sb));
        assert!(!ScModel::tsc().is_consistent(&sb));
    }
}

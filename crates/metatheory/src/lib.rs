//! Metatheory of the transactional memory models (§8 of the paper, Table 2).
//!
//! Four families of checks, each bounded and fully mechanical:
//!
//! * [`check_monotonicity`] — introducing, enlarging or coalescing
//!   transactions never makes an inconsistent execution consistent (§8.1).
//!   Holds for x86 and C++; Power and ARMv8 have the 2-event
//!   RMW-straddles-a-boundary counterexample. [`syntactic_monotonicity`]
//!   derives the property from axiom *structure* alone (polarity analysis
//!   over the shared axiom IR) wherever every axiom body is positive in the
//!   transactional structure, and is cross-checked against the enumeration.
//! * [`check_compilation`] — compiling C++ transactions directly to x86,
//!   Power or ARMv8 transactions is sound (§8.2).
//! * [`check_lock_elision`] — the lock-elision mapping of Table 3 preserves
//!   critical-region serialisability (§8.3). Unsound on ARMv8 (Example 1.1);
//!   no witness for x86 within the searched family; the §1.1 DMB repair
//!   removes the ARMv8 witness.
//! * [`check_theorem_7_2`] / [`check_theorem_7_3`] — bounded checks of the
//!   two hand-proved theorems about the C++ TM model (§7).
//!
//! # Quick start
//!
//! ```
//! use tm_litmus::Arch;
//! use tm_metatheory::check_lock_elision;
//!
//! let result = check_lock_elision(Arch::Armv8, false);
//! assert!(!result.sound()); // Example 1.1 rediscovered
//! let fixed = check_lock_elision(Arch::Armv8, true);
//! assert!(fixed.sound());   // the DMB repair removes the witness
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod elision;
mod monotonicity;
mod theorems;

pub use compile::{check_compilation, compile_execution, CompilationResult};
pub use elision::{abstract_family, check_lock_elision, elide, CrBody, ElisionResult, LOCK_VAR};
pub use monotonicity::{
    check_monotonicity, syntactic_monotonicity, syntactic_monotonicity_of, transaction_reductions,
    MonotonicityResult, SyntacticMonotonicity,
};
pub use theorems::{check_theorem_7_2, check_theorem_7_3, TheoremResult};

//! Compilation of C++ transactions to hardware (§8.2, middle block of
//! Table 2).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tm_exec::{Annot, Event, ExecView, Execution, ExecutionBuilder, Fence};
use tm_litmus::Arch;
use tm_models::{Armv8Model, CppModel, MemoryModel, PowerModel, X86Model};
use tm_synth::{enumerate_exact, SynthConfig};

/// The outcome of a bounded compilation-soundness check.
#[derive(Clone, Debug)]
pub struct CompilationResult {
    /// The hardware target.
    pub target: Arch,
    /// The event-count bound reached (source events).
    pub max_events: usize,
    /// Number of source executions examined.
    pub checked: usize,
    /// A counterexample, if one exists within the bound: a C++ execution
    /// that the C++ TM model forbids whose compiled image the hardware TM
    /// model allows. The parallel search makes *which* counterexample is
    /// reported (and the exact `checked` count at the find) run-dependent;
    /// existence is deterministic.
    pub counterexample: Option<(Execution, Execution)>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl CompilationResult {
    /// True if no counterexample was found within the bound.
    pub fn sound(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Compiles a C++ execution to the given hardware target, following the
/// standard (leading-fence) mappings and preserving transactions
/// (`stxnY = π⁻¹ ; stxnX ; π`):
///
/// * **x86** — every access becomes a plain access; an `MFENCE` follows
///   each seq_cst store;
/// * **Power** — a `sync` precedes each seq_cst access, an `lwsync`
///   precedes each release store and follows each acquire/seq_cst load;
/// * **ARMv8** — acquire loads become `LDAR`, release/seq_cst stores become
///   `STLR`, seq_cst loads become `LDAR`; no fences are needed.
///
/// Dependencies, `rf`, `co`, RMW pairs and transaction membership are
/// carried across unchanged.
pub fn compile_execution(source: &Execution, target: Arch) -> Execution {
    let mut b = ExecutionBuilder::new();
    let n = source.len();
    let mut map: Vec<Option<usize>> = vec![None; n];
    // Every target event emitted for a given source event (fences included),
    // so that transaction membership can be carried over contiguously.
    let mut emitted: Vec<Vec<usize>> = vec![Vec::new(); n];

    // Emit thread by thread in program order, inserting fences as required.
    for t in 0..source.thread_count() {
        let mut ids: Vec<usize> = (0..n)
            .filter(|&e| source.event(e).thread.0 as usize == t)
            .collect();
        ids.sort_by_key(|&e| source.po.predecessors(e).count());
        for e in ids {
            let ev = *source.event(e);
            let thread = ev.thread.0;
            let annot = ev.annot;
            // Leading fences.
            if target == Arch::Power {
                if annot.sc {
                    emitted[e].push(b.push(Event::fence(thread, Fence::Sync)));
                } else if annot.rel && ev.is_write() {
                    emitted[e].push(b.push(Event::fence(thread, Fence::Lwsync)));
                }
            }
            let compiled_annot = match target {
                Arch::X86 => Annot::PLAIN,
                Arch::Power => Annot::PLAIN,
                Arch::Armv8 => Annot {
                    acq: annot.acq && ev.is_read(),
                    rel: (annot.rel || annot.sc) && ev.is_write(),
                    sc: false,
                    atomic: false,
                },
                Arch::Cpp => annot,
            };
            let compiled_annot = if target == Arch::Armv8 && annot.sc && ev.is_read() {
                Annot {
                    acq: true,
                    ..compiled_annot
                }
            } else {
                compiled_annot
            };
            let access = b.push(ev.with_annot(compiled_annot));
            map[e] = Some(access);
            emitted[e].push(access);
            // Trailing fences.
            match target {
                Arch::X86 if annot.sc && ev.is_write() => {
                    emitted[e].push(b.push(Event::fence(thread, Fence::MFence)));
                }
                Arch::Power if (annot.acq || annot.sc) && ev.is_read() => {
                    emitted[e].push(b.push(Event::fence(thread, Fence::Lwsync)));
                }
                _ => {}
            }
        }
    }

    // Carry the structural relations across π.
    let carry = |pairs: &tm_relation::Relation, add: &mut dyn FnMut(usize, usize)| {
        for (a, c) in pairs.iter() {
            if let (Some(x), Some(y)) = (map[a], map[c]) {
                add(x, y);
            }
        }
    };
    carry(&source.rf, &mut |x, y| {
        b.rf(x, y);
    });
    carry(&source.co, &mut |x, y| {
        b.co(x, y);
    });
    carry(&source.addr, &mut |x, y| {
        b.addr(x, y);
    });
    carry(&source.data, &mut |x, y| {
        b.data(x, y);
    });
    carry(&source.ctrl, &mut |x, y| {
        b.ctrl(x, y);
    });
    carry(&source.rmw, &mut |x, y| {
        b.rmw(x, y);
    });
    for class in source.txn_classes() {
        // The image of a transaction includes the fences inserted for its
        // members, keeping the class contiguous in the target.
        let image: Vec<usize> = class.iter().flat_map(|&e| emitted[e].clone()).collect();
        b.txn(&image);
    }

    b.build()
        .expect("compiling a well-formed execution preserves well-formedness")
}

/// Checks soundness of compiling C++ transactions to `target` for every C++
/// execution with up to `max_events` events under `config`.
pub fn check_compilation(
    target: Arch,
    config: &SynthConfig,
    max_events: usize,
) -> CompilationResult {
    let start = Instant::now();
    let cpp = CppModel::tm();
    let hardware: Box<dyn MemoryModel> = match target {
        Arch::X86 => Box::new(X86Model::tm()),
        Arch::Power => Box::new(PowerModel::tm()),
        Arch::Armv8 => Box::new(Armv8Model::tm()),
        Arch::Cpp => Box::new(CppModel::tm()),
    };
    let checked = AtomicUsize::new(0);
    let found = AtomicBool::new(false);
    let counterexample: Mutex<Option<(Execution, Execution)>> = Mutex::new(None);

    for n in 2..=max_events {
        if found.load(Ordering::Relaxed) {
            break;
        }
        enumerate_exact(config, n, |exec| {
            if found.load(Ordering::Relaxed) {
                return;
            }
            checked.fetch_add(1, Ordering::Relaxed);
            if cpp.is_consistent_view(&ExecView::new(exec)) {
                return;
            }
            let compiled = compile_execution(exec, target);
            if hardware.is_consistent_view(&ExecView::new(&compiled)) {
                found.store(true, Ordering::Relaxed);
                counterexample
                    .lock()
                    .unwrap()
                    .get_or_insert((exec.clone(), compiled));
            }
        });
    }

    CompilationResult {
        target,
        max_events,
        checked: checked.into_inner(),
        counterexample: counterexample.into_inner().unwrap(),
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::catalog;

    #[test]
    fn compilation_preserves_transactions_and_structure() {
        let src = catalog::mp_txn();
        for target in [Arch::X86, Arch::Power, Arch::Armv8] {
            let out = compile_execution(&src, target);
            assert_eq!(out.txn_classes().len(), 2);
            assert_eq!(out.rf.len(), src.rf.len());
            assert_eq!(out.rmw.len(), src.rmw.len());
        }
    }

    #[test]
    fn power_mapping_inserts_fences_for_release_acquire() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::release_atomic()));
        b.push(Event::read(1, 0).with_annot(Annot::acquire_atomic()));
        let src = b.build().unwrap();
        let out = compile_execution(&src, Arch::Power);
        assert_eq!(out.fences_of(Fence::Lwsync).len(), 2);
        // Accesses themselves become plain.
        assert!(out.acquires().is_empty() && out.releases().is_empty());
    }

    #[test]
    fn armv8_mapping_uses_acquire_release_instructions() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::seq_cst()));
        b.push(Event::read(1, 0).with_annot(Annot::seq_cst()));
        let src = b.build().unwrap();
        let out = compile_execution(&src, Arch::Armv8);
        assert!(out.fences().is_empty());
        assert_eq!(out.releases().len(), 1);
        assert_eq!(out.acquires().len(), 1);
    }

    #[test]
    fn x86_mapping_fences_sc_stores() {
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::seq_cst()));
        b.push(Event::read(0, 1).with_annot(Annot::seq_cst()));
        let src = b.build().unwrap();
        let out = compile_execution(&src, Arch::X86);
        assert_eq!(out.fences_of(Fence::MFence).len(), 1);
    }

    #[test]
    fn compilation_is_sound_at_small_bounds() {
        // Table 2, middle block: no counterexample for any target. The
        // paper checks 6 events; the benchmark harness pushes our bound
        // higher than this quick test.
        let mut cfg = SynthConfig::cpp(3);
        cfg.read_annots = vec![
            Annot::PLAIN,
            Annot::relaxed_atomic(),
            Annot::acquire_atomic(),
        ];
        cfg.write_annots = vec![
            Annot::PLAIN,
            Annot::relaxed_atomic(),
            Annot::release_atomic(),
        ];
        for target in [Arch::X86, Arch::Power, Arch::Armv8] {
            let result = check_compilation(target, &cfg, 3);
            assert!(
                result.sound(),
                "compilation to {target} has a counterexample: {:?}",
                result.counterexample
            );
            assert!(result.checked > 0);
        }
    }

    #[test]
    fn sc_atomics_compile_soundly_on_sb() {
        // The classic worry: SB with seq_cst atomics must stay forbidden
        // after compilation.
        let mut b = ExecutionBuilder::new();
        b.push(Event::write(0, 0).with_annot(Annot::seq_cst()));
        b.push(Event::read(0, 1).with_annot(Annot::seq_cst()));
        b.push(Event::write(1, 1).with_annot(Annot::seq_cst()));
        b.push(Event::read(1, 0).with_annot(Annot::seq_cst()));
        let src = b.build().unwrap();
        assert!(!CppModel::tm().is_consistent(&src));
        for (target, model) in [
            (Arch::X86, Box::new(X86Model::tm()) as Box<dyn MemoryModel>),
            (Arch::Power, Box::new(PowerModel::tm())),
            (Arch::Armv8, Box::new(Armv8Model::tm())),
        ] {
            let compiled = compile_execution(&src, target);
            assert!(
                !model.is_consistent(&compiled),
                "SB with SC atomics became allowed on {target}"
            );
        }
    }
}

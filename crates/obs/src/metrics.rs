//! Typed counters and histograms behind a [`MetricsRegistry`].
//!
//! Handles are cheap clones of `Arc<Atomic…>` cells: instrumented code
//! looks a counter up **once** (outside its hot loop) and then pays one
//! relaxed `fetch_add` per increment — the same cost whether a sink is
//! attached or not, which is what keeps the null-sink overhead of an
//! instrumented sweep below the noise floor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (still counts).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: values up to 2^63 land in a bucket.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// `buckets[i]` counts values whose bit length is `i` — i.e. bucket 0
    /// holds 0, bucket 1 holds 1, bucket 2 holds 2..=3, bucket i holds
    /// 2^(i-1)..=2^i - 1.
    buckets: [AtomicU64; BUCKETS],
}

/// A log2-bucketed histogram of `u64` samples (typically microseconds).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

impl Histogram {
    /// A histogram not attached to any registry (still records).
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        let cells = &*self.0;
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize;
        cells.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// The non-empty log2 buckets as `(lower_bound, count)` pairs.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                (count > 0).then_some((lower, count))
            })
            .collect()
    }
}

/// A sliding-window rate estimator over a monotonically increasing counter.
///
/// Callers push `(elapsed_seconds, cumulative_count)` samples at whatever
/// cadence they observe the counter (the sweep monitor ticks ~every 500ms);
/// [`rate`](RateWindow::rate) reports the growth rate over roughly the last
/// `window` seconds. Unlike a whole-run average this tracks the *current*
/// throughput, which is what an ETA should extrapolate — near the tail of a
/// skewed sweep the run average badly overestimates the remaining rate.
///
/// The estimator refuses to extrapolate from thin evidence:
/// [`rate`](RateWindow::rate) is `None` until at least two windows' worth of
/// run time has elapsed (and at least two samples span a positive interval).
#[derive(Debug)]
pub struct RateWindow {
    window: f64,
    samples: std::collections::VecDeque<(f64, f64)>,
}

impl RateWindow {
    /// A window of `window_secs` seconds (clamped to a sane minimum).
    pub fn new(window_secs: f64) -> RateWindow {
        RateWindow {
            window: window_secs.max(0.001),
            samples: std::collections::VecDeque::new(),
        }
    }

    /// Records the counter at `cumulative` as of `at_secs` run time.
    /// Out-of-order samples are ignored; samples older than one window
    /// behind `at_secs` are dropped (keeping one just outside so the span
    /// always covers the window once enough time has passed).
    pub fn push(&mut self, at_secs: f64, cumulative: f64) {
        if let Some(&(last_at, _)) = self.samples.back() {
            if at_secs < last_at {
                return;
            }
        }
        self.samples.push_back((at_secs, cumulative));
        let horizon = at_secs - self.window;
        while self.samples.len() > 2 && self.samples[1].0 <= horizon {
            self.samples.pop_front();
        }
    }

    /// The windowed rate in counts per second, or `None` while the run is
    /// too young to extrapolate: fewer than two windows of total run time
    /// (measured by the latest sample), fewer than two samples, or a
    /// zero-length span.
    pub fn rate(&self) -> Option<f64> {
        let (&(t0, c0), &(t1, c1)) = (self.samples.front()?, self.samples.back()?);
        if t1 < 2.0 * self.window || t1 <= t0 {
            return None;
        }
        Some((c1 - c0) / (t1 - t0))
    }
}

enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

/// A named set of counters and histograms.
///
/// Registration takes a lock; incrementing does not. Names are dotted
/// paths (`sweep.units.completed`); snapshots list metrics in registration
/// order.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Gets or registers the counter called `name`.
    ///
    /// Panics if `name` is already a histogram — a name means one type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Counter(c) => return c.clone(),
                Metric::Histogram(_) => panic!("metric `{name}` is a histogram, not a counter"),
            }
        }
        let counter = Counter::default();
        metrics.push((name.to_string(), Metric::Counter(counter.clone())));
        counter
    }

    /// Gets or registers the histogram called `name`.
    ///
    /// Panics if `name` is already a counter.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Histogram(h) => return h.clone(),
                Metric::Counter(_) => panic!("metric `{name}` is a counter, not a histogram"),
            }
        }
        let histogram = Histogram::default();
        metrics.push((name.to_string(), Metric::Histogram(histogram.clone())));
        histogram
    }

    /// Snapshots every metric as JSON, in registration order:
    /// counters as bare numbers, histograms as
    /// `{count, sum, max, buckets: [[lower, n], …]}`.
    pub fn to_json(&self) -> Json {
        let metrics = self.metrics.lock().unwrap();
        Json::Obj(
            metrics
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => Json::u64(c.get()),
                        Metric::Histogram(h) => Json::obj(vec![
                            ("count", Json::u64(h.count())),
                            ("sum", Json::u64(h.sum())),
                            ("max", Json::u64(h.max())),
                            (
                                "buckets",
                                Json::Arr(
                                    h.buckets()
                                        .into_iter()
                                        .map(|(lo, n)| Json::Arr(vec![Json::u64(lo), Json::u64(n)]))
                                        .collect(),
                                ),
                            ),
                        ]),
                    };
                    (name.clone(), value)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("sweep.units.completed");
        let b = registry.counter("sweep.units.completed");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(
            registry
                .to_json()
                .get("sweep.units.completed")
                .unwrap()
                .as_u64(),
            Some(4)
        );
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::detached();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
        // 0 → bucket 0; 1 → [1]; 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
        assert_eq!(h.buckets(), vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn one_name_means_one_type() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.histogram("x");
    }

    #[test]
    fn rate_window_tracks_the_recent_rate_only() {
        let mut w = RateWindow::new(10.0);
        // Too young: no estimate before two windows have elapsed.
        w.push(0.0, 0.0);
        w.push(5.0, 500.0);
        assert_eq!(w.rate(), None);
        w.push(19.0, 1900.0);
        assert_eq!(w.rate(), None, "19s < two 10s windows");
        // 100/s for 20s, then the rate collapses to 10/s.
        w.push(20.0, 2000.0);
        assert!(w.rate().is_some());
        for i in 1..=30 {
            let t = 20.0 + f64::from(i);
            w.push(t, 2000.0 + 10.0 * f64::from(i));
        }
        let rate = w.rate().expect("mature window");
        assert!(
            (rate - 10.0).abs() < 1.0,
            "windowed rate {rate} should track the recent 10/s, not the 100/s start"
        );
        // Out-of-order pushes are ignored rather than corrupting the span.
        w.push(1.0, 0.0);
        assert!(w.rate().is_some());
    }
}

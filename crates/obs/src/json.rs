//! A std-only JSON value, parser and renderer.
//!
//! The repository keeps all of its machine-readable artifacts —
//! `BENCH_synth.json`, `sweep.report.json`, heartbeat files — in JSON, and
//! the workspace has no external dependencies, so this module is the one
//! codec they share. Objects preserve insertion order (reports are diffed
//! by humans), numbers are `f64` (every counter in the system fits in the
//! 2^53 exact-integer range; 64-bit fingerprints are rendered as hex
//! *strings*), and parsing is strict enough to reject the truncated or
//! hand-mangled files the crash tests produce.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and duplicate keys are rejected
    /// by the parser.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Wraps a `u64` counter. Panics above 2^53, where `f64` would silently
    /// round — no counter in the system can legitimately get there.
    pub fn u64(v: u64) -> Json {
        assert!(v <= (1u64 << 53), "count {v} exceeds the exact f64 range");
        Json::Num(v as f64)
    }

    /// Renders a `u64` fingerprint as an `0x`-prefixed hex string, exact at
    /// full width.
    pub fn hex(v: u64) -> Json {
        Json::Str(format!("{v:#018x}"))
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (single line, no spaces) — the JSON-lines shape.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty-printed with 2-space indentation and a trailing
    /// newline — the on-disk report shape.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.is_empty(), '[', ']', |out| {
                for (i, item) in items.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    item.write(out, indent, depth + 1);
                }
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.is_empty(), '{', '}', |out| {
                for (i, (k, v)) in pairs.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
            }),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else after the value is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after the value"));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < (1u64 << 53) as f64 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with the byte offset where parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> JsonError {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(JsonError::at(*pos, format!("unexpected byte {:#04x}", b))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected `{literal}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, format!("invalid number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by anything this
                        // repository writes; reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| JsonError::at(*pos, "unpaired surrogate"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar (input is a &str, so the
                // boundary math is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut pairs: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected a string key"));
        }
        let key_at = *pos;
        let key = parse_string(bytes, pos)?;
        if pairs.iter().any(|(k, _)| *k == key) {
            return Err(JsonError::at(key_at, format!("duplicate key `{key}`")));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected `:`"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("schema", Json::Str("tm-sweep-report/v1".into())),
            ("fingerprint", Json::hex(0xdead_beef_0042_0001)),
            ("wall_seconds", Json::Num(11.52)),
            (
                "units",
                Json::obj(vec![
                    ("total", Json::u64(504)),
                    ("completed", Json::u64(504)),
                ]),
            ),
            (
                "slowest",
                Json::Arr(vec![
                    Json::obj(vec![(
                        "label",
                        Json::Str("threads=2+1 prefix=R0,W0,F".into()),
                    )]),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.render_pretty(), doc.render_compact()] {
            assert_eq!(Json::parse(&text).expect("parses"), doc);
        }
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}f λ".into());
        let text = doc.render_compact();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
    }

    #[test]
    fn integers_render_without_a_decimal_point() {
        assert_eq!(Json::u64(42).render_compact(), "42");
        assert_eq!(Json::Num(0.5).render_compact(), "0.5");
    }

    #[test]
    fn rejects_mangled_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1 \"b\":2}",
            "{\"a\":1}x",
            "\"unterminated",
            "{\"dup\":1,\"dup\":2}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_numbers_and_exponents() {
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse(" 17 ").unwrap().as_u64(), Some(17));
        assert_eq!(Json::parse("0.25").unwrap().as_f64(), Some(0.25));
    }
}

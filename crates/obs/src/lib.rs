//! Std-only observability for the sweep/synthesis stack: timed spans,
//! typed counters and histograms, pluggable event sinks, and the JSON
//! codec the machine-readable artifacts share.
//!
//! The design constraint is the hot path: the incremental sweep visits
//! ~10⁶ executions per second per core, so instrumentation must cost one
//! relaxed atomic increment when nobody is watching. The pieces:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s and log2-bucketed
//!   [`Histogram`]s; handles are pre-looked-up `Arc` cells, increments are
//!   relaxed atomics, snapshots render to JSON. [`RateWindow`] turns a
//!   sampled counter into a sliding-window rate (the sweep ETA's input).
//! * [`Obs`] — the injectable handle (the `firm`-style null-sink logger
//!   idiom): a sink, a registry and an enabled flag behind one cheap
//!   `Clone`. `Obs::disabled()` is the default everywhere; code holding a
//!   disabled handle emits nothing and times nothing.
//! * [`Event`]/[`Sink`] — typed records ([`NullSink`], [`StderrSink`],
//!   [`JsonLinesSink`]), selected at runtime via [`SinkKind::parse`]
//!   (`null` / `stderr` / `json:<path>`).
//! * [`SpanGuard`] — hierarchical RAII timings on the monotonic clock.
//! * [`Json`] — the std-only JSON value/parser/renderer used by
//!   `sweep.report.json`, heartbeats and the bench trajectory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod sink;
mod span;

use std::io;
use std::sync::Arc;

pub use json::{Json, JsonError};
pub use metrics::{Counter, Histogram, MetricsRegistry, RateWindow};
pub use sink::{Event, Field, JsonLinesSink, NullSink, Sink, SinkKind, StderrSink};
pub use span::SpanGuard;

struct ObsInner {
    enabled: bool,
    sink: Box<dyn Sink>,
    registry: MetricsRegistry,
}

/// The injectable observability handle: a sink, a metrics registry and an
/// enabled flag. Cloning shares all three.
///
/// Counters registered through a disabled handle still count (they are the
/// cheap part and the sweep reads them back for its report); events and
/// spans are suppressed entirely.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl Obs {
    /// The default handle: null sink, events and spans off, registry live.
    pub fn disabled() -> Obs {
        Obs {
            inner: Arc::new(ObsInner {
                enabled: false,
                sink: Box::new(NullSink),
                registry: MetricsRegistry::new(),
            }),
        }
    }

    /// An enabled handle delivering events to `kind`.
    ///
    /// [`SinkKind::Null`] still enables spans and events (they are simply
    /// dropped at the sink) — use [`Obs::disabled`] for zero cost.
    pub fn with_sink(kind: SinkKind) -> io::Result<Obs> {
        let sink: Box<dyn Sink> = match kind {
            SinkKind::Null => Box::new(NullSink),
            SinkKind::Stderr => Box::new(StderrSink),
            SinkKind::JsonLines(path) => Box::new(JsonLinesSink::create(&path)?),
        };
        Ok(Obs {
            inner: Arc::new(ObsInner {
                enabled: true,
                sink,
                registry: MetricsRegistry::new(),
            }),
        })
    }

    /// Whether events and spans are delivered.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Delivers `event` to the sink (dropped when disabled).
    pub fn emit(&self, event: Event) {
        if self.inner.enabled {
            self.inner.sink.emit(&event);
        }
    }

    /// The shared metrics registry (live even when disabled).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Shorthand for `registry().counter(name)`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.registry.counter(name)
    }

    /// Opens a timed span; it closes (and reports) when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::start(self, name)
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.inner.sink.flush();
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_counts_but_does_not_emit() {
        let obs = Obs::disabled();
        let c = obs.counter("sweep.units.completed");
        c.incr();
        obs.emit(Event::new("unit.complete").field("unit_id", 1u64));
        assert!(!obs.is_enabled());
        assert_eq!(obs.counter("sweep.units.completed").get(), 1);
    }
}

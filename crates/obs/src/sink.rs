//! Typed event records and pluggable sinks.
//!
//! An [`Event`] is a name plus typed key/value fields — the locus-style
//! "typed record" shape: producers never format strings, sinks decide the
//! wire format. Three sinks ship: [`NullSink`] (drop everything — the
//! default, and the reason instrumentation is safe to leave in),
//! [`StderrSink`] (human-readable lines), and [`JsonLinesSink`] (one JSON
//! object per line, machine-tailable).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::json::Json;

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    /// An unsigned count.
    U64(u64),
    /// A float (seconds, rates).
    F64(f64),
    /// A string (labels, reasons).
    Str(String),
    /// A flag.
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Field {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Field {
        Field::U64(v as u64)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Field {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::Bool(v)
    }
}

impl Field {
    fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::u64(*v),
            Field::F64(v) => Json::Num(*v),
            Field::Str(v) => Json::Str(v.clone()),
            Field::Bool(v) => Json::Bool(*v),
        }
    }
}

/// One observability event: a dotted name (`unit.complete`) and typed
/// fields in emission order.
#[derive(Clone, Debug)]
pub struct Event {
    /// Dotted event name.
    pub name: &'static str,
    /// Typed fields, in emission order.
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    /// Starts an event with no fields.
    pub fn new(name: &'static str) -> Event {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Adds a field (builder-style).
    pub fn field(mut self, key: &'static str, value: impl Into<Field>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// The event as a single-line JSON object (`{"event": name, …fields}`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("event".to_string(), Json::Str(self.name.to_string()))];
        pairs.extend(
            self.fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json())),
        );
        Json::Obj(pairs)
    }
}

/// Where events go. Implementations must tolerate concurrent `emit` calls.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Drops every event.
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Human-readable `[obs] name key=value …` lines on stderr.
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        let mut line = format!("[obs] {}", event.name);
        for (key, value) in &event.fields {
            match value {
                Field::U64(v) => line.push_str(&format!(" {key}={v}")),
                Field::F64(v) => line.push_str(&format!(" {key}={v:.3}")),
                Field::Bool(v) => line.push_str(&format!(" {key}={v}")),
                Field::Str(v) => line.push_str(&format!(" {key}={v:?}")),
            }
        }
        eprintln!("{line}");
    }
}

/// One compact JSON object per event, appended to a file.
pub struct JsonLinesSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Creates (truncating) the target file.
    pub fn create(path: &Path) -> io::Result<JsonLinesSink> {
        Ok(JsonLinesSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json().render_compact();
        let mut writer = self.writer.lock().unwrap();
        let _ = writeln!(writer, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

/// A runtime sink selection, parsed from `--obs null|stderr|json:<path>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Drop events (the default).
    Null,
    /// Human-readable stderr lines.
    Stderr,
    /// JSON-lines into the given file.
    JsonLines(PathBuf),
}

impl SinkKind {
    /// Parses `null`, `stderr` or `json:<path>`.
    pub fn parse(s: &str) -> Result<SinkKind, String> {
        match s {
            "null" => Ok(SinkKind::Null),
            "stderr" => Ok(SinkKind::Stderr),
            _ => match s.split_once(':') {
                Some(("json", path)) if !path.is_empty() => {
                    Ok(SinkKind::JsonLines(PathBuf::from(path)))
                }
                _ => Err(format!(
                    "bad sink `{s}` (expected null, stderr or json:<path>)"
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialise_to_json_lines() {
        let event = Event::new("unit.complete")
            .field("unit_id", 7u64)
            .field("seconds", 0.25)
            .field("label", "threads=2+1 prefix=R0")
            .field("reused", false);
        assert_eq!(
            event.to_json().render_compact(),
            r#"{"event":"unit.complete","unit_id":7,"seconds":0.25,"label":"threads=2+1 prefix=R0","reused":false}"#
        );
    }

    #[test]
    fn sink_kinds_parse() {
        assert_eq!(SinkKind::parse("null"), Ok(SinkKind::Null));
        assert_eq!(SinkKind::parse("stderr"), Ok(SinkKind::Stderr));
        assert_eq!(
            SinkKind::parse("json:/tmp/x.jsonl"),
            Ok(SinkKind::JsonLines(PathBuf::from("/tmp/x.jsonl")))
        );
        assert!(SinkKind::parse("json:").is_err());
        assert!(SinkKind::parse("syslog").is_err());
    }
}

//! Hierarchical timed spans.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop on
//! the monotonic clock, nests per thread (`sweep/assemble` means an
//! `assemble` span opened inside a `sweep` span), and on drop emits a
//! `span` event and records the duration into the `span.<name>` histogram.
//! Spans obtained from a disabled [`Obs`](crate::Obs) handle do nothing —
//! not even read the clock.

use std::cell::RefCell;
use std::time::Instant;

use crate::sink::Event;
use crate::Obs;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing one span. Obtained from [`Obs::span`].
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    obs: Obs,
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn start(obs: &Obs, name: &'static str) -> SpanGuard {
        if !obs.is_enabled() {
            return SpanGuard { active: None };
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        SpanGuard {
            active: Some(ActiveSpan {
                obs: obs.clone(),
                name,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are usually dropped in LIFO order; a guard kept alive
            // across its parent's drop just truncates to its own frame.
            if let Some(at) = stack.iter().rposition(|n| *n == active.name) {
                let path = stack[..=at].join("/");
                stack.truncate(at);
                path
            } else {
                active.name.to_string()
            }
        });
        active
            .obs
            .registry()
            .histogram(&format!("span.{}", active.name))
            .record_micros(elapsed);
        active
            .obs
            .emit(Event::new("span").field("path", path).field(
                "micros",
                elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
            ));
    }
}

#[cfg(test)]
mod tests {
    use crate::{Obs, SinkKind};

    #[test]
    fn disabled_spans_are_free_and_silent() {
        let obs = Obs::disabled();
        let guard = obs.span("outer");
        drop(guard);
        assert_eq!(obs.registry().to_json(), crate::Json::Obj(vec![]));
    }

    #[test]
    fn spans_nest_and_record_histograms() {
        let dir = std::env::temp_dir().join("tm-obs-span-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let obs = Obs::with_sink(SinkKind::JsonLines(path.clone())).unwrap();
        {
            let _outer = obs.span("sweep");
            let _inner = obs.span("assemble");
        }
        obs.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one event per span: {text}");
        let first = crate::Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("path").unwrap().as_str(), Some("sweep/assemble"));
        let second = crate::Json::parse(lines[1]).unwrap();
        assert_eq!(second.get("path").unwrap().as_str(), Some("sweep"));
        let metrics = obs.registry().to_json();
        assert_eq!(
            metrics
                .get("span.sweep")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(
            metrics
                .get("span.assemble")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

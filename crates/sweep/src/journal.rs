//! An append-only, CRC-checked checkpoint journal for sweep runs.
//!
//! The journal is the sole persistent state of a checkpointed sweep. It is
//! designed around one invariant: **a prefix of the file is always a valid
//! journal**. Records are appended (optionally batched) and fsync'd; a crash
//! mid-append leaves at most a torn tail, which the loader detects (short
//! read or CRC mismatch) and discards, and which the writer truncates away
//! before appending again.
//!
//! ## On-disk format
//!
//! ```text
//! header  := magic "TMSWEEP\x01" (8 bytes) | version u32 LE (= 3)
//! record  := kind u8 | len u32 LE | payload (len bytes) | crc u32 LE
//! ```
//!
//! The CRC is CRC-32 (IEEE, reflected, poly `0xEDB88320`) over
//! `kind | len | payload`. Everything is little-endian. The format is
//! versioned via the header; readers reject unknown versions outright
//! rather than guessing. Version 3 added the scheduler records ([`Split`]
//! and [`Claim`](Record::Claim)); version-2 journals are a strict record
//! subset and still load (and may legitimately grow v3 records when an old
//! checkpoint is resumed by a newer binary).
//!
//! [`Split`]: Record::Split

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL_FILE: &str = "sweep.journal";

const MAGIC: &[u8; 8] = b"TMSWEEP\x01";
// Version 2 added the orbit-weighted counters to `UnitDone` (symmetry-reduced
// sweeps); version-1 journals are rejected rather than reinterpreted.
// Version 3 added `Split` (work-unit refinement) and `Claim` (cross-shard
// lease provenance). Version-2 journals carry a strict subset of the record
// kinds, so they replay unchanged.
const VERSION: u32 = 3;
const OLDEST_READABLE_VERSION: u32 = 2;
const HEADER_LEN: u64 = 12;

/// Cap on a single record's payload; anything larger is treated as a torn
/// tail rather than an attempt to allocate gigabytes from corrupt bytes.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

const KIND_META: u8 = 1;
const KIND_UNIT_DONE: u8 = 2;
const KIND_QUARANTINE: u8 = 3;
const KIND_SPLIT: u8 = 4;
const KIND_CLAIM: u8 = 5;

/// Bitwise CRC-32 (IEEE 802.3, reflected). Table-free: journal records are
/// small and rare, so simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One durable fact about a sweep run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// Identifies the sweep this journal belongs to. Always the first
    /// record; resuming against a journal whose meta disagrees is an error.
    Meta {
        /// Fingerprint of the job (config, event bound, mode, model names).
        fingerprint: u64,
        /// The event bound of the sweep.
        events: u32,
        /// 0 = counts, 1 = suites.
        mode: u8,
        /// This journal's shard index (0 when unsharded).
        shard_index: u32,
        /// Total shard count (1 when unsharded).
        shard_count: u32,
    },
    /// A work unit ran to completion; its results are banked here.
    UnitDone {
        /// Stable id of the unit (see `WorkUnit::stable_id`).
        unit_id: u64,
        /// Executions visited within the unit (canonical representatives
        /// only, under symmetry reduction).
        visited: u64,
        /// Executions the model found consistent (counts mode; canonical
        /// representatives only, under symmetry reduction).
        consistent: u64,
        /// Verdict disagreements against the reference checker.
        drift: u64,
        /// Orbit-weighted visit count: each visited execution counted with
        /// its isomorphism-orbit size. Equals `visited` in a full sweep.
        weighted_visited: u64,
        /// Orbit-weighted consistent count. Equals `consistent` in a full
        /// sweep.
        weighted_consistent: u64,
        /// Encoded Forbid candidates found in the unit (suites mode).
        candidates: Vec<Vec<u8>>,
    },
    /// A work unit exhausted its retry budget and was set aside.
    Quarantine {
        /// Stable id of the quarantined unit.
        unit_id: u64,
        /// Attempts made before giving up.
        attempts: u32,
        /// Human-readable reason (panic payload or "deadline exceeded").
        reason: String,
    },
    /// A work unit was refined into child subtrees (`WorkUnit::split`).
    /// On replay the parent is replaced by its children in the frontier —
    /// unless a `UnitDone` for the parent also exists, in which case the
    /// whole-unit completion wins and the split is ignored. The child ids
    /// are recorded so replay can verify its deterministic re-derivation of
    /// the children against what the splitting run actually scheduled.
    Split {
        /// Stable id of the unit that was split.
        parent_id: u64,
        /// Stable ids of the children, in the deterministic split order.
        child_ids: Vec<u64>,
    },
    /// Provenance of a cross-shard lease claim: this journal's shard took
    /// the unit from the shared frontier (rather than owning it statically).
    /// Purely informational on replay — completion is still `UnitDone`.
    Claim {
        /// Stable id of the claimed unit.
        unit_id: u64,
        /// The claiming shard.
        shard_index: u32,
        /// The shard process launch (0 on first launch; restarts increment).
        launch: u32,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }
}

impl Record {
    fn kind(&self) -> u8 {
        match self {
            Record::Meta { .. } => KIND_META,
            Record::UnitDone { .. } => KIND_UNIT_DONE,
            Record::Quarantine { .. } => KIND_QUARANTINE,
            Record::Split { .. } => KIND_SPLIT,
            Record::Claim { .. } => KIND_CLAIM,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Meta {
                fingerprint,
                events,
                mode,
                shard_index,
                shard_count,
            } => {
                put_u64(&mut out, *fingerprint);
                put_u32(&mut out, *events);
                out.push(*mode);
                put_u32(&mut out, *shard_index);
                put_u32(&mut out, *shard_count);
            }
            Record::UnitDone {
                unit_id,
                visited,
                consistent,
                drift,
                weighted_visited,
                weighted_consistent,
                candidates,
            } => {
                put_u64(&mut out, *unit_id);
                put_u64(&mut out, *visited);
                put_u64(&mut out, *consistent);
                put_u64(&mut out, *drift);
                put_u64(&mut out, *weighted_visited);
                put_u64(&mut out, *weighted_consistent);
                put_u32(&mut out, candidates.len() as u32);
                for c in candidates {
                    put_u32(&mut out, c.len() as u32);
                    out.extend_from_slice(c);
                }
            }
            Record::Quarantine {
                unit_id,
                attempts,
                reason,
            } => {
                put_u64(&mut out, *unit_id);
                put_u32(&mut out, *attempts);
                let bytes = reason.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
            Record::Split {
                parent_id,
                child_ids,
            } => {
                put_u64(&mut out, *parent_id);
                put_u32(&mut out, child_ids.len() as u32);
                for &c in child_ids {
                    put_u64(&mut out, c);
                }
            }
            Record::Claim {
                unit_id,
                shard_index,
                launch,
            } => {
                put_u64(&mut out, *unit_id);
                put_u32(&mut out, *shard_index);
                put_u32(&mut out, *launch);
            }
        }
        out
    }

    /// Decodes a payload for `kind`. `None` means malformed — the loader
    /// treats that the same as a CRC mismatch (torn tail).
    fn decode(kind: u8, payload: &[u8]) -> Option<Record> {
        let mut c = Cursor {
            bytes: payload,
            at: 0,
        };
        let record = match kind {
            KIND_META => Record::Meta {
                fingerprint: c.u64()?,
                events: c.u32()?,
                mode: c.u8()?,
                shard_index: c.u32()?,
                shard_count: c.u32()?,
            },
            KIND_UNIT_DONE => {
                let unit_id = c.u64()?;
                let visited = c.u64()?;
                let consistent = c.u64()?;
                let drift = c.u64()?;
                let weighted_visited = c.u64()?;
                let weighted_consistent = c.u64()?;
                let count = c.u32()? as usize;
                let mut candidates = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let len = c.u32()? as usize;
                    candidates.push(c.take(len)?.to_vec());
                }
                Record::UnitDone {
                    unit_id,
                    visited,
                    consistent,
                    drift,
                    weighted_visited,
                    weighted_consistent,
                    candidates,
                }
            }
            KIND_QUARANTINE => {
                let unit_id = c.u64()?;
                let attempts = c.u32()?;
                let len = c.u32()? as usize;
                let reason = String::from_utf8(c.take(len)?.to_vec()).ok()?;
                Record::Quarantine {
                    unit_id,
                    attempts,
                    reason,
                }
            }
            KIND_SPLIT => {
                let parent_id = c.u64()?;
                let count = c.u32()? as usize;
                let mut child_ids = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    child_ids.push(c.u64()?);
                }
                Record::Split {
                    parent_id,
                    child_ids,
                }
            }
            KIND_CLAIM => Record::Claim {
                unit_id: c.u64()?,
                shard_index: c.u32()?,
                launch: c.u32()?,
            },
            _ => return None,
        };
        if c.at != payload.len() {
            return None;
        }
        Some(record)
    }

    fn framed(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut frame = Vec::with_capacity(payload.len() + 9);
        frame.push(self.kind());
        put_u32(&mut frame, payload.len() as u32);
        frame.extend_from_slice(&payload);
        let crc = crc32(&frame);
        put_u32(&mut frame, crc);
        frame
    }
}

/// A journal read back from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Every intact record, in append order (the `Meta` comes first).
    pub records: Vec<Record>,
    /// Whether a torn/corrupt tail was discarded after the last record.
    pub truncated_tail: bool,
    /// Byte length of the valid prefix; the writer truncates to this
    /// before appending so garbage never sits between records.
    pub valid_len: u64,
}

/// Reads the journal at `path`. Returns `Ok(None)` if the file does not
/// exist; IO errors are genuine errors. A torn tail (short record or CRC
/// mismatch) is *not* an error — the valid prefix is returned and
/// `truncated_tail` is set.
pub fn load(path: &Path) -> io::Result<Option<LoadedJournal>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "journal shorter than its header",
        ));
    }
    if &bytes[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "journal magic mismatch (not a sweep journal)",
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if !(OLDEST_READABLE_VERSION..=VERSION).contains(&version) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported journal version {version}"),
        ));
    }

    let mut records = Vec::new();
    let mut at = HEADER_LEN as usize;
    let mut truncated_tail = false;
    while at < bytes.len() {
        let intact = (|| {
            let kind = *bytes.get(at)?;
            let len_bytes = bytes.get(at + 1..at + 5)?;
            let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                return None;
            }
            let payload_end = at + 5 + len as usize;
            let payload = bytes.get(at + 5..payload_end)?;
            let crc_bytes = bytes.get(payload_end..payload_end + 4)?;
            let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
            if crc32(&bytes[at..payload_end]) != crc {
                return None;
            }
            let record = Record::decode(kind, payload)?;
            Some((record, payload_end + 4))
        })();
        match intact {
            Some((record, next)) => {
                records.push(record);
                at = next;
            }
            None => {
                truncated_tail = true;
                break;
            }
        }
    }
    Ok(Some(LoadedJournal {
        records,
        truncated_tail,
        valid_len: at as u64,
    }))
}

/// An append-only journal writer with batched fsync.
///
/// `append` buffers frames; every `sync_batch` appends (and on `sync`/drop)
/// the buffer is written and `sync_data`'d. A batch is written with a single
/// `write_all`, so a crash tears at most the final batch — never an earlier
/// record.
pub struct JournalWriter {
    file: File,
    buffer: Vec<u8>,
    pending: usize,
    sync_batch: usize,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` (truncating any existing file) and
    /// writes the header plus the `meta` record, synced.
    pub fn create(path: &Path, meta: &Record, sync_batch: usize) -> io::Result<JournalWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        file.write_all(&header)?;
        let mut writer = JournalWriter {
            file,
            buffer: Vec::new(),
            pending: 0,
            sync_batch: sync_batch.max(1),
        };
        writer.append(meta)?;
        writer.sync()?;
        Ok(writer)
    }

    /// Reopens an existing journal for appending, first truncating the file
    /// to `valid_len` (from [`load`]) so a torn tail never precedes new
    /// records.
    pub fn reopen(path: &Path, valid_len: u64, sync_batch: usize) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(JournalWriter {
            file,
            buffer: Vec::new(),
            pending: 0,
            sync_batch: sync_batch.max(1),
        })
    }

    /// Buffers `record`; flushes + fsyncs once the batch is full.
    pub fn append(&mut self, record: &Record) -> io::Result<()> {
        self.buffer.extend_from_slice(&record.framed());
        self.pending += 1;
        if self.pending >= self.sync_batch {
            self.sync()?;
        }
        Ok(())
    }

    /// Writes any buffered records and fsyncs the file.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.buffer.is_empty() {
            self.file.write_all(&self.buffer)?;
            self.buffer.clear();
        }
        if self.pending > 0 {
            self.file.sync_data()?;
            self.pending = 0;
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Meta {
                fingerprint: 0xDEAD_BEEF_0BAD_F00D,
                events: 3,
                mode: 1,
                shard_index: 0,
                shard_count: 1,
            },
            Record::UnitDone {
                unit_id: 42,
                visited: 1000,
                consistent: 12,
                drift: 0,
                weighted_visited: 4000,
                weighted_consistent: 48,
                candidates: vec![vec![1, 2, 3], vec![]],
            },
            Record::Quarantine {
                unit_id: 7,
                attempts: 3,
                reason: "injected panic".into(),
            },
            Record::UnitDone {
                unit_id: 43,
                visited: 5,
                consistent: 5,
                drift: 1,
                weighted_visited: 5,
                weighted_consistent: 5,
                candidates: vec![],
            },
            Record::Split {
                parent_id: 99,
                child_ids: vec![100, 101, 102],
            },
            Record::Claim {
                unit_id: 100,
                shard_index: 1,
                launch: 2,
            },
        ]
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-sweep-journal-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn round_trip_preserves_records() {
        let path = temp_path("round-trip");
        let records = sample_records();
        {
            let mut w = JournalWriter::create(&path, &records[0], 2).expect("create");
            for r in &records[1..] {
                w.append(r).expect("append");
            }
            w.sync().expect("sync");
        }
        let loaded = load(&path).expect("load").expect("exists");
        assert_eq!(loaded.records, records);
        assert!(!loaded.truncated_tail);
        assert_eq!(
            loaded.valid_len,
            std::fs::metadata(&path).expect("meta").len()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_truncation_yields_a_valid_prefix() {
        let path = temp_path("truncate");
        let records = sample_records();
        {
            let mut w = JournalWriter::create(&path, &records[0], 1).expect("create");
            for r in &records[1..] {
                w.append(r).expect("append");
            }
        }
        let full = std::fs::read(&path).expect("read");
        // Record boundaries: replaying the loader's framing.
        let mut boundaries = vec![HEADER_LEN as usize];
        {
            let mut at = HEADER_LEN as usize;
            while at < full.len() {
                let len =
                    u32::from_le_bytes(full[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
                at += 9 + len;
                boundaries.push(at);
            }
        }
        for cut in HEADER_LEN as usize..full.len() {
            std::fs::write(&path, &full[..cut]).expect("write prefix");
            let loaded = load(&path).expect("load").expect("exists");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                loaded.records,
                records[..whole],
                "cut at byte {cut} must yield exactly the whole records before it"
            );
            assert_eq!(loaded.truncated_tail, cut != boundaries[whole]);
            assert_eq!(loaded.valid_len as usize, boundaries[whole]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_byte_cuts_from_that_record() {
        let path = temp_path("corrupt");
        let records = sample_records();
        {
            let mut w = JournalWriter::create(&path, &records[0], 1).expect("create");
            for r in &records[1..] {
                w.append(r).expect("append");
            }
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a byte inside the second record's payload.
        let first_len = u32::from_le_bytes(bytes[13..17].try_into().expect("4 bytes")) as usize;
        let second_start = HEADER_LEN as usize + 9 + first_len;
        bytes[second_start + 6] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let loaded = load(&path).expect("load").expect("exists");
        assert_eq!(loaded.records, records[..1]);
        assert!(loaded.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = temp_path("reopen");
        let records = sample_records();
        {
            let mut w = JournalWriter::create(&path, &records[0], 1).expect("create");
            w.append(&records[1]).expect("append");
        }
        // Simulate a torn tail: append garbage.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(&[0xAB, 0xCD, 0xEF]).expect("garbage");
        }
        let loaded = load(&path).expect("load").expect("exists");
        assert!(loaded.truncated_tail);
        {
            let mut w = JournalWriter::reopen(&path, loaded.valid_len, 1).expect("reopen");
            w.append(&records[2]).expect("append");
        }
        let reloaded = load(&path).expect("load").expect("exists");
        assert_eq!(reloaded.records, records[..3]);
        assert!(!reloaded.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    /// A journal written by the previous (v2) format — header version 2,
    /// records limited to the v2 kinds — must still load and replay.
    #[test]
    fn version_two_journals_still_load() {
        let path = temp_path("v2-compat");
        let records: Vec<Record> = sample_records()
            .into_iter()
            .filter(|r| !matches!(r, Record::Split { .. } | Record::Claim { .. }))
            .collect();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for r in &records {
            bytes.extend_from_slice(&r.framed());
        }
        std::fs::write(&path, &bytes).expect("write");
        let loaded = load(&path).expect("load").expect("exists");
        assert_eq!(loaded.records, records);
        assert!(!loaded.truncated_tail);

        // Version 1 stays rejected.
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).expect("write");
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a journal").expect("write");
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
        assert!(load(&path).expect("missing is ok").is_none());
    }
}

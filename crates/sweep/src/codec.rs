//! A compact, versionless byte codec for [`Execution`]s, used to bank
//! per-unit Forbid candidates in the sweep journal.
//!
//! The encoding is exact (decode ∘ encode = identity, pinned by tests): the
//! event list followed by the eleven primitive relations as explicit pair
//! lists, everything little-endian. No attempt is made at compression —
//! banked candidates are rare (a handful per sweep) and tiny (≤ 8 events).

use tm_exec::{Annot, Event, EventKind, Execution, Fence, Loc, LockCall, ThreadId};
use tm_relation::Relation;

/// Why a byte string failed to decode as an [`Execution`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the structure it promised.
    Truncated,
    /// An event carried an unknown kind tag.
    BadEventTag(u8),
    /// A fence event carried an out-of-range fence index.
    BadFence(u32),
    /// A lock-call event carried an out-of-range call index.
    BadLockCall(u32),
    /// A relation pair referenced an event id outside the universe.
    BadEventId(u32),
    /// Trailing bytes followed the final relation.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "execution record truncated"),
            CodecError::BadEventTag(t) => write!(f, "unknown event kind tag {t}"),
            CodecError::BadFence(i) => write!(f, "fence index {i} out of range"),
            CodecError::BadLockCall(i) => write!(f, "lock-call index {i} out of range"),
            CodecError::BadEventId(e) => write!(f, "event id {e} outside the universe"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after the execution"),
        }
    }
}

impl std::error::Error for CodecError {}

const KIND_READ: u8 = 0;
const KIND_WRITE: u8 = 1;
const KIND_FENCE: u8 = 2;
const KIND_LOCK: u8 = 3;

fn annot_bits(a: Annot) -> u8 {
    u8::from(a.acq) | u8::from(a.rel) << 1 | u8::from(a.sc) << 2 | u8::from(a.atomic) << 3
}

fn annot_from_bits(b: u8) -> Annot {
    Annot {
        acq: b & 1 != 0,
        rel: b & 2 != 0,
        sc: b & 4 != 0,
        atomic: b & 8 != 0,
    }
}

/// The inverse of [`Fence::index`] (pinned against it by a test).
fn fence_from_index(i: u32) -> Option<Fence> {
    Some(match i {
        0 => Fence::MFence,
        1 => Fence::Sync,
        2 => Fence::Lwsync,
        3 => Fence::Isync,
        4 => Fence::Dmb,
        5 => Fence::DmbLd,
        6 => Fence::DmbSt,
        7 => Fence::Isb,
        8 => Fence::FenceSc,
        9 => Fence::FenceAcq,
        10 => Fence::FenceRel,
        _ => return None,
    })
}

fn lock_call_index(c: LockCall) -> u32 {
    match c {
        LockCall::Lock => 0,
        LockCall::Unlock => 1,
        LockCall::TxLock => 2,
        LockCall::TxUnlock => 3,
    }
}

fn lock_call_from_index(i: u32) -> Option<LockCall> {
    Some(match i {
        0 => LockCall::Lock,
        1 => LockCall::Unlock,
        2 => LockCall::TxLock,
        3 => LockCall::TxUnlock,
        _ => return None,
    })
}

/// The eleven primitive relations of an execution, in a fixed order shared
/// by encoder and decoder.
fn relations(exec: &Execution) -> [&Relation; 11] {
    [
        &exec.po,
        &exec.rf,
        &exec.co,
        &exec.addr,
        &exec.data,
        &exec.ctrl,
        &exec.rmw,
        &exec.stxn,
        &exec.stxnat,
        &exec.scr,
        &exec.scrt,
    ]
}

/// Serialises `exec` into a self-delimiting byte string.
pub fn encode_execution(exec: &Execution) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&(exec.len() as u32).to_le_bytes());
    for event in &exec.events {
        let (tag, payload) = match event.kind {
            EventKind::Read(Loc(l)) => (KIND_READ, l),
            EventKind::Write(Loc(l)) => (KIND_WRITE, l),
            EventKind::Fence(fence) => (KIND_FENCE, fence.index() as u32),
            EventKind::LockCall(call) => (KIND_LOCK, lock_call_index(call)),
        };
        out.push(tag);
        out.extend_from_slice(&event.thread.0.to_le_bytes());
        out.extend_from_slice(&payload.to_le_bytes());
        out.push(annot_bits(event.annot));
    }
    for rel in relations(exec) {
        let pairs: Vec<(usize, usize)> = rel.iter().collect();
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (a, b) in pairs {
            out.extend_from_slice(&(a as u32).to_le_bytes());
            out.extend_from_slice(&(b as u32).to_le_bytes());
        }
    }
    out
}

/// A cursor over the encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.at).ok_or(CodecError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.at.checked_add(4).ok_or(CodecError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(CodecError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(slice.try_into().expect("4 bytes")))
    }
}

/// Decodes a byte string produced by [`encode_execution`].
pub fn decode_execution(bytes: &[u8]) -> Result<Execution, CodecError> {
    let mut r = Reader { bytes, at: 0 };
    let n = r.u32()? as usize;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tag = r.u8()?;
        let thread = r.u32()?;
        let payload = r.u32()?;
        let annot = annot_from_bits(r.u8()?);
        let kind = match tag {
            KIND_READ => EventKind::Read(Loc(payload)),
            KIND_WRITE => EventKind::Write(Loc(payload)),
            KIND_FENCE => {
                EventKind::Fence(fence_from_index(payload).ok_or(CodecError::BadFence(payload))?)
            }
            KIND_LOCK => EventKind::LockCall(
                lock_call_from_index(payload).ok_or(CodecError::BadLockCall(payload))?,
            ),
            other => return Err(CodecError::BadEventTag(other)),
        };
        events.push(Event {
            thread: ThreadId(thread),
            kind,
            annot,
        });
    }
    let mut exec = Execution::with_events(events);
    for rel_at in 0..11 {
        let pairs = r.u32()?;
        for _ in 0..pairs {
            let a = r.u32()?;
            let b = r.u32()?;
            if a as usize >= n {
                return Err(CodecError::BadEventId(a));
            }
            if b as usize >= n {
                return Err(CodecError::BadEventId(b));
            }
            let rel = match rel_at {
                0 => &mut exec.po,
                1 => &mut exec.rf,
                2 => &mut exec.co,
                3 => &mut exec.addr,
                4 => &mut exec.data,
                5 => &mut exec.ctrl,
                6 => &mut exec.rmw,
                7 => &mut exec.stxn,
                8 => &mut exec.stxnat,
                9 => &mut exec.scr,
                _ => &mut exec.scrt,
            };
            rel.insert(a as usize, b as usize);
        }
    }
    if r.at != bytes.len() {
        return Err(CodecError::TrailingBytes(bytes.len() - r.at));
    }
    Ok(exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_exec::ExecutionBuilder;

    fn sample() -> Execution {
        let mut b = ExecutionBuilder::new();
        let wx = b.push(Event::write(0, 0));
        let wy = b.push(Event::write(0, 1).with_annot(Annot::release()));
        let ry = b.push(Event::read(1, 1).with_annot(Annot::acquire()));
        let rx = b.push(Event::read(1, 0));
        b.rf(wy, ry);
        b.txn(&[wx, wy]);
        let mut exec = b.build().expect("well-formed");
        exec.data.insert(ry, rx);
        exec
    }

    #[test]
    fn round_trip_is_identity() {
        let exec = sample();
        let bytes = encode_execution(&exec);
        let back = decode_execution(&bytes).expect("decodes");
        assert_eq!(exec, back);
        assert_eq!(exec.signature(), back.signature());
    }

    #[test]
    fn fence_events_round_trip_every_kind() {
        for i in 0..Fence::COUNT as u32 {
            let fence = fence_from_index(i).expect("in range");
            assert_eq!(fence.index() as u32, i, "fence_from_index inverts index");
            let exec = Execution::with_events(vec![Event::fence(0, fence)]);
            let back = decode_execution(&encode_execution(&exec)).expect("decodes");
            assert_eq!(exec, back);
        }
        assert!(fence_from_index(Fence::COUNT as u32).is_none());
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = encode_execution(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_execution(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_execution(&trailing),
            Err(CodecError::TrailingBytes(1))
        );
        let mut bad_tag = bytes;
        bad_tag[4] = 9; // first event's kind tag
        assert_eq!(decode_execution(&bad_tag), Err(CodecError::BadEventTag(9)));
    }
}

//! The checkpointed sweep runner: claims work units, journals their
//! results, survives worker panics and process crashes, and reassembles
//! suites that are bit-identical to an uninterrupted run.
//!
//! The unit of fault tolerance is the [`WorkUnit`](tm_synth::WorkUnit): a
//! (thread partition, shape prefix) subspace with a stable cross-process id.
//! A unit either runs to completion — its counts and banked Forbid
//! candidates are appended to the journal — or it leaves no trace and is
//! re-run on resume. Because every unit is deterministic and the final
//! assembly sorts by canonical signature, *when* and *by whom* a unit runs
//! cannot change the suites.
//!
//! ## Adaptive scheduling
//!
//! Units are wildly skewed: one odometer subtree can hold orders of
//! magnitude more executions than another, and at |E|=8 the tail unit *is*
//! the makespan. Three mechanisms (on by default, `sched: false` restores
//! static dispatch) attack that:
//!
//! * **Weight-ordered (LPT) dispatch** — every unit gets an upper-bound
//!   weight ([`tm_synth::unit_weight`]); workers always take the heaviest
//!   pending unit, so the big rocks land first and the tail is small.
//! * **Splittable units** — a unit heavier than `max_unit_weight` is
//!   pre-split ([`tm_synth::split_unit`]) into child subtrees with their
//!   own stable ids, journalled as [`Record::Split`]. Mid-run, an idle
//!   worker is a steal request: a worker running a splittable unit
//!   between-children hands the unfinished children back to the frontier.
//!   The same mechanism preserves work at budget expiry — finished
//!   children are journalled instead of discarding the whole unit.
//! * **Cross-shard work stealing** — with a shared `lease_dir`, shards
//!   stop owning static `id % M` slices: every shard sees the whole
//!   frontier and claims units through atomic lease files (see
//!   [`crate::lease`]). A shard that dies holding a lease goes stale and
//!   its units are reclaimed by the survivors; duplicated completions are
//!   reconciled (and validated identical) at merge time.
//!
//! Replay folds [`Record::Split`] by replacing the parent with its
//! children in the frontier — unless a whole-parent `UnitDone` exists, in
//! which case the completion wins. Either way the leaf results sum to
//! exactly what the unsplit unit would have produced, so suites stay
//! bit-identical however the work was diced.

use std::collections::{HashMap, HashSet};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tm_exec::ir::Delta;
use tm_exec::{ExecView, Execution};
use tm_models::{CheckerTelemetry, MemoryModel};
use tm_obs::{Event, Obs, RateWindow};
use tm_synth::{
    assemble_suites, canonical_signature, enumerate_unit_incremental, enumerate_unit_reduced,
    minimal_under_weakenings, split_unit, unit_weight, work_units, CanonSig, ReducedCount,
    SuiteReport, Symmetry, SynthConfig, WorkUnit,
};

use crate::codec::{decode_execution, encode_execution};
use crate::fnv::Fnv1a;
use crate::journal::{self, JournalWriter, Record, JOURNAL_FILE};
use crate::lease::LeaseManager;
use crate::report::{Heartbeat, ETA_WINDOW_SECS};

/// The exit code used by injected-crash fault plans, distinct from every
/// legitimate `tm-cat` exit code so tests and supervisors can tell an
/// injected crash from a real failure.
pub const INJECTED_EXIT_CODE: i32 = 42;

/// What a sweep computes per execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMode {
    /// Count consistent executions (and drift against a reference model)
    /// over every size `2..=events` — the plain `tm-cat sweep`.
    Counts,
    /// Synthesise the Forbid/Allow suites at exactly `events` events —
    /// `tm-cat sweep --suites`.
    Suites,
}

impl SweepMode {
    fn byte(self) -> u8 {
        match self {
            SweepMode::Counts => 0,
            SweepMode::Suites => 1,
        }
    }
}

/// The models and bounds of one sweep — everything that determines its
/// result, fingerprinted into the journal so a checkpoint can refuse to
/// resume under a different job.
pub struct SweepJob<'a> {
    /// The model under study (the TM model in suites mode).
    pub model: &'a dyn MemoryModel,
    /// The non-transactional baseline (required in suites mode).
    pub baseline: Option<&'a dyn MemoryModel>,
    /// A reference model to diff verdicts against (counts mode).
    pub reference: Option<&'a dyn MemoryModel>,
    /// What to compute.
    pub mode: SweepMode,
    /// Enumeration bounds.
    pub config: &'a SynthConfig,
    /// The event bound.
    pub events: usize,
    /// Whether the enumeration visits the full space or one canonical
    /// representative per isomorphism class. Part of the journal
    /// fingerprint: a reduced journal's unit results (representative
    /// counts, orbit weights) are not interchangeable with a full
    /// journal's, so the two must never merge or resume into each other.
    pub symmetry: Symmetry,
}

impl SweepJob<'_> {
    /// A stable fingerprint of everything that determines the sweep's
    /// result. Two jobs fingerprint equal iff their journals are
    /// interchangeable.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.u64(self.config.fingerprint());
        h.usize(self.events);
        h.byte(self.mode.byte());
        h.byte(self.symmetry.byte());
        h.bytes(self.model.name().as_bytes());
        h.byte(0xFF);
        if let Some(b) = self.baseline {
            h.bytes(b.name().as_bytes());
        }
        h.byte(0xFF);
        if let Some(r) = self.reference {
            h.bytes(r.name().as_bytes());
        }
        h.finish()
    }

    fn sizes(&self) -> Vec<usize> {
        match self.mode {
            SweepMode::Counts => (2..=self.events).collect(),
            SweepMode::Suites => vec![self.events],
        }
    }
}

/// How an injected fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailKind {
    /// The victim unit panics on **every** attempt — exercises the full
    /// retry-then-quarantine path.
    Panic,
    /// The victim unit panics on its first attempt only — exercises
    /// retry-then-success.
    PanicOnce,
    /// The whole process exits with [`INJECTED_EXIT_CODE`] (journal synced
    /// first) — exercises crash/resume and supervisor restart.
    Exit,
    /// The victim unit stalls (sleeps) instead of finishing — exercises
    /// per-unit deadlines.
    Stall,
}

/// A fault-injection plan: trip [`FailKind`] when the `after_units`-th work
/// unit is claimed (1-based; with several workers the exact set of units
/// already banked at that point is racy, which is the point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailPlan {
    /// How the fault manifests.
    pub kind: FailKind,
    /// Trip on the K-th claimed unit.
    pub after_units: u64,
}

impl FailPlan {
    /// Parses `panic:K`, `panic-once:K`, `exit:K` or `stall:K`.
    pub fn parse(s: &str) -> Result<FailPlan, String> {
        let (kind, k) = s
            .split_once(':')
            .ok_or_else(|| format!("bad fail plan `{s}` (expected KIND:K)"))?;
        let kind = match kind {
            "panic" => FailKind::Panic,
            "panic-once" => FailKind::PanicOnce,
            "exit" => FailKind::Exit,
            "stall" => FailKind::Stall,
            other => {
                return Err(format!(
                    "bad fail kind `{other}` (expected panic, panic-once, exit or stall)"
                ))
            }
        };
        let after_units: u64 = k
            .parse()
            .map_err(|_| format!("bad fail plan count `{k}` (expected a number)"))?;
        if after_units == 0 {
            return Err("fail plan count must be >= 1".to_string());
        }
        Ok(FailPlan { kind, after_units })
    }

    /// Reads a plan from the `TM_SWEEP_FAIL_PLAN` environment variable, if
    /// set — lets tests inject faults into child processes they spawn.
    pub fn from_env() -> Result<Option<FailPlan>, String> {
        match std::env::var("TM_SWEEP_FAIL_PLAN") {
            Ok(s) if !s.is_empty() => FailPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

/// Knobs of a checkpointed sweep run.
pub struct SweepOptions {
    /// Directory holding the journal (created if missing).
    pub checkpoint: PathBuf,
    /// Replay an existing journal and continue; without this flag an
    /// existing journal is an error (never silently clobbered).
    pub resume: bool,
    /// Run only units with `id % m == i`, as `(i, m)`.
    pub shard: Option<(u32, u32)>,
    /// Wall-clock budget; when it expires, in-flight units are abandoned
    /// (left pending in the journal) and the run reports
    /// [`SweepStatus::BudgetExhausted`].
    pub budget: Option<Duration>,
    /// Per-unit deadline; a unit that exceeds it is retried, then
    /// quarantined.
    pub unit_deadline: Option<Duration>,
    /// Retries after a failed attempt before quarantining (so a unit gets
    /// `retries + 1` attempts).
    pub retries: u32,
    /// Base backoff between attempts, doubled each retry.
    pub backoff: Duration,
    /// Worker thread count; defaults to `TM_SYNTH_THREADS` or the
    /// available parallelism.
    pub threads: Option<usize>,
    /// Journal records buffered per fsync batch (1 = sync every record).
    pub sync_batch: usize,
    /// Fault injection, for crash/resume tests.
    pub fail_plan: Option<FailPlan>,
    /// Observability handle: per-unit events go to its sink, rollup
    /// counters to its registry. The default [`Obs::disabled`] handle
    /// costs one relaxed atomic increment per counted thing.
    pub obs: Obs,
    /// Print a live `units done/total, execs/s, ETA` line to stderr.
    pub progress: bool,
    /// Adaptive scheduling (on by default): weight-ordered (LPT) dispatch,
    /// pre-splitting of oversized units, cooperative mid-run splits when
    /// workers go idle, and work preservation at budget expiry. With
    /// `sched: false` units run whole in their deterministic order and no
    /// weights are computed — the static dispatch of earlier releases.
    pub sched: bool,
    /// Pre-split any unit whose weight upper bound exceeds this; `None`
    /// derives `total_weight / (4 × threads)`. Ignored with `sched: false`.
    pub max_unit_weight: Option<u64>,
    /// Shared lease directory for cross-shard work stealing. When set,
    /// this shard ignores its static `id % M` slice and instead claims
    /// units from the whole frontier through atomic lease files (see
    /// [`crate::lease`]). `shard` is still required (it names the
    /// checkpoint and stamps the claims).
    pub lease_dir: Option<PathBuf>,
    /// Monotone launch counter stamped into lease claims (the supervisor
    /// increments it per restart) — provenance only.
    pub launch: u32,
}

impl SweepOptions {
    /// Defaults: fresh run, no shard, no budget, no deadline, 2 retries
    /// with 25ms base backoff, per-record fsync, no fault injection.
    pub fn new(checkpoint: impl Into<PathBuf>) -> SweepOptions {
        SweepOptions {
            checkpoint: checkpoint.into(),
            resume: false,
            shard: None,
            budget: None,
            unit_deadline: None,
            retries: 2,
            backoff: Duration::from_millis(25),
            threads: None,
            sync_batch: 1,
            fail_plan: None,
            obs: Obs::disabled(),
            progress: false,
            sched: true,
            max_unit_weight: None,
            lease_dir: None,
            launch: 0,
        }
    }
}

/// How a sweep run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepStatus {
    /// Every unit of this shard completed.
    Complete,
    /// Every unit was attempted but some were quarantined; results are
    /// degraded (a quarantined unit's subspace is missing from the suites).
    Partial,
    /// The wall-clock budget expired with units still pending; resume with
    /// the same checkpoint to continue.
    BudgetExhausted,
}

/// A unit that exhausted its retries.
#[derive(Clone, Debug)]
pub struct QuarantinedUnit {
    /// Stable id of the unit.
    pub unit_id: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The last failure (panic payload or "deadline exceeded").
    pub reason: String,
    /// Human-readable unit label ("threads=2+1 prefix=R0,W0,F"), when the
    /// unit was attempted this run (quarantines replayed from a journal
    /// carry an empty label).
    pub label: String,
}

/// Wall-clock phase timings of one sweep run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepTimings {
    /// Unit construction, shard filtering and journal replay.
    pub setup_seconds: f64,
    /// The worker scope — where the enumeration happens.
    pub run_seconds: f64,
    /// Summing results and (suites mode) assembling the suites.
    pub assemble_seconds: f64,
    /// End to end, as seen by [`run_sweep`].
    pub total_seconds: f64,
}

/// Per-unit telemetry of one *completed* unit, as reported in
/// `sweep.report.json`. Units replayed from the journal carry their
/// journalled counts but no timing (`reused` is true, `seconds` and
/// `attempts` are zero).
#[derive(Clone, Debug)]
pub struct UnitReport {
    /// Stable id of the unit.
    pub unit_id: u64,
    /// Human-readable label ("threads=2+1 prefix=R0,W0,F").
    pub label: String,
    /// Event count of the unit's subspace.
    pub events: usize,
    /// Whether the result was replayed from the journal rather than run.
    pub reused: bool,
    /// Wall seconds of the successful attempt (0 when reused).
    pub seconds: f64,
    /// Attempts the unit took this run (0 when reused).
    pub attempts: u32,
    /// Executions visited (canonical representatives under reduction).
    pub visited: u64,
    /// Orbit-weighted visit count.
    pub weighted_visited: u64,
}

/// The result of a checkpointed sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// How the run ended.
    pub status: SweepStatus,
    /// Executions visited across all completed units (canonical
    /// representatives only, under symmetry reduction).
    pub visited: u64,
    /// Consistent executions (counts mode; representatives only, under
    /// symmetry reduction).
    pub consistent: u64,
    /// Verdict disagreements against the reference model (counts mode).
    pub drift: u64,
    /// Orbit-weighted visit count — the full-space total a symmetry-reduced
    /// sweep covered. Equals `visited` in a full sweep.
    pub weighted_visited: u64,
    /// Orbit-weighted consistent count. Equals `consistent` in a full sweep.
    pub weighted_consistent: u64,
    /// The assembled suites (suites mode, unsharded runs and merges only —
    /// a single shard holds too little to assemble).
    pub suites: Option<SuiteReport>,
    /// Units in this shard's slice of the space.
    pub total_units: usize,
    /// Units completed, including ones replayed from the journal.
    pub completed_units: usize,
    /// Units whose results were replayed from the journal rather than run.
    pub reused_units: usize,
    /// Units neither completed nor quarantined (budget ran out first).
    pub pending_units: usize,
    /// Units that exhausted their retries.
    pub quarantined: Vec<QuarantinedUnit>,
    /// Retry attempts made across all units (0 in a fault-free run).
    pub retried_attempts: u64,
    /// Units completed by this run (`completed_units - reused_units`).
    pub fresh_units: usize,
    /// One entry per completed unit (reused included), in deterministic
    /// unit order — reconciles 1:1 with the journal's completed set.
    pub per_unit: Vec<UnitReport>,
    /// Enumeration tally of the *fresh* units only, including the
    /// symmetry kill counters (all zero under [`Symmetry::Full`]).
    pub prune: ReducedCount,
    /// Rollup of the fresh units' checker telemetry (maintenance stats,
    /// early exits); `None` when no fresh unit ran an instrumented checker.
    pub checker: Option<CheckerTelemetry>,
    /// Phase timings of this run.
    pub timings: SweepTimings,
}

/// Why a sweep could not run (as opposed to running degraded).
#[derive(Debug)]
pub enum SweepError {
    /// Filesystem trouble with the checkpoint directory or journal.
    Io(io::Error),
    /// The request contradicts itself or the on-disk checkpoint (journal
    /// exists without `--resume`, meta mismatch, bad shard spec, …).
    Config(String),
}

impl From<io::Error> for SweepError {
    fn from(e: io::Error) -> SweepError {
        SweepError::Io(e)
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Io(e) => write!(f, "checkpoint IO error: {e}"),
            SweepError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

/// A work unit paired with its size and stable id.
#[derive(Clone)]
struct UnitRef {
    n: usize,
    id: u64,
    unit: WorkUnit,
}

/// What one completed unit contributed. Under [`Symmetry::Reduced`] the
/// plain counters count canonical representatives and the `weighted_*`
/// counters carry the orbit-weighted (full-space) totals; under
/// [`Symmetry::Full`] the two coincide.
#[derive(Clone, Default)]
struct UnitResult {
    visited: u64,
    consistent: u64,
    drift: u64,
    weighted_visited: u64,
    weighted_consistent: u64,
    candidates: Vec<Vec<u8>>,
}

/// What a successful attempt hands back beyond the journalled result:
/// the enumeration tally (with symmetry kill counters) and the checker's
/// own telemetry, neither of which is journalled.
struct FreshDone {
    result: UnitResult,
    tally: ReducedCount,
    checker: Option<CheckerTelemetry>,
}

/// How one attempt at a unit ended.
enum Attempt {
    Done(Box<FreshDone>),
    /// The wall-clock budget expired mid-unit; nothing is banked.
    Interrupted,
    /// The per-unit deadline expired; retryable.
    Deadline,
}

/// Shared fault-injection state: `claimed` counts unit claims, and the
/// `after_units`-th claim marks its unit as the victim.
struct FailState {
    plan: FailPlan,
    claimed: AtomicU64,
    victim: AtomicU64,
    once_fired: AtomicBool,
}

const NO_VICTIM: u64 = u64::MAX;

impl FailState {
    fn new(plan: FailPlan) -> FailState {
        FailState {
            plan,
            claimed: AtomicU64::new(0),
            victim: AtomicU64::new(NO_VICTIM),
            once_fired: AtomicBool::new(false),
        }
    }

    /// Called when a worker claims a unit; marks the K-th claim's unit as
    /// the victim.
    fn on_claim(&self, unit_id: u64) {
        let k = self.claimed.fetch_add(1, Ordering::SeqCst) + 1;
        if k == self.plan.after_units {
            self.victim.store(unit_id, Ordering::SeqCst);
        }
    }

    fn is_victim(&self, unit_id: u64) -> bool {
        self.victim.load(Ordering::SeqCst) == unit_id
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

/// This shard's live claim on one leased unit. The `beat` counter is
/// ticked by the enumeration's stop hook (see [`run_attempt`]); the
/// monitor refreshes the lease file only when the beat has advanced, so a
/// wedged worker lets its lease go stale. `left` counts the unfinished
/// jobs still running under the claim — the unit itself, plus one per
/// child handed back to the frontier by a split; when it reaches zero the
/// lease completes (renames to a done marker).
struct LeaseHold {
    unit_id: u64,
    beat: AtomicU64,
    left: AtomicUsize,
}

/// One dispatchable piece of work: a unit (root or split-off child), its
/// weight, and — in lease mode, once claimed — the lease hold it runs
/// under.
struct Task {
    weight: u64,
    unit: UnitRef,
    hold: Option<Arc<LeaseHold>>,
}

/// What [`Scheduler::next`] hands a worker.
enum Dispatch {
    /// Run this task (the scheduler counted it in flight; the worker must
    /// [`Scheduler::finish`] it on every exit path).
    Run(Task),
    /// The queue is empty but work is in flight — it may split and refill
    /// the queue. Nap briefly and ask again.
    Wait,
    /// The queue is empty, nothing is in flight, but lease-blocked tasks
    /// are parked. The caller holds a virtual in-flight token (so sibling
    /// workers [`Dispatch::Wait`] instead of exiting) and must re-examine
    /// the tasks, push back the still-blocked ones, and
    /// [`Scheduler::finish`] the token.
    Rescan(Vec<Task>),
    /// Nothing left anywhere: exit.
    Drained,
}

/// The shared work frontier. With `sched` on, the queue is kept sorted by
/// ascending weight and popped from the end — longest-processing-time
/// first; with `sched` off it pops in the original deterministic order and
/// all weights are zero.
struct Scheduler {
    queue: Mutex<Vec<Task>>,
    /// Lease-blocked tasks (another shard holds the lease): parked here so
    /// the hot dispatch loop does not spin on them.
    deferred: Mutex<Vec<Task>>,
    in_flight: AtomicUsize,
    /// Workers currently napping in [`Dispatch::Wait`] — a nonzero value
    /// is a standing steal request to whoever runs a splittable unit.
    idle: AtomicUsize,
    sched: bool,
}

impl Scheduler {
    fn new(mut tasks: Vec<Task>, sched: bool) -> Scheduler {
        if sched {
            tasks.sort_by_key(|t| t.weight);
        } else {
            tasks.reverse();
        }
        Scheduler {
            queue: Mutex::new(tasks),
            deferred: Mutex::new(Vec::new()),
            in_flight: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            sched,
        }
    }

    fn next(&self) -> Dispatch {
        let mut queue = self.queue.lock().unwrap();
        if let Some(task) = queue.pop() {
            // Counted in flight under the queue lock, so "empty queue and
            // nothing in flight" (checked under the same lock) really
            // means drained — an in-flight task can still push splits.
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            return Dispatch::Run(task);
        }
        if self.in_flight.load(Ordering::SeqCst) > 0 {
            return Dispatch::Wait;
        }
        let mut deferred = self.deferred.lock().unwrap();
        if deferred.is_empty() {
            return Dispatch::Drained;
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        Dispatch::Rescan(std::mem::take(&mut *deferred))
    }

    /// Settles one [`Dispatch::Run`] task or [`Dispatch::Rescan`] token.
    fn finish(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Returns tasks to the frontier (split-off children, or rescanned
    /// lease-blocked tasks), keeping the weight order.
    fn push(&self, tasks: Vec<Task>) {
        let mut queue = self.queue.lock().unwrap();
        for task in tasks {
            if self.sched {
                let pos = queue.partition_point(|t| t.weight <= task.weight);
                queue.insert(pos, task);
            } else {
                queue.insert(0, task);
            }
        }
    }

    fn defer(&self, task: Task) {
        self.deferred.lock().unwrap().push(task);
    }

    fn idle_waiters(&self) -> usize {
        self.idle.load(Ordering::SeqCst)
    }
}

/// How a (possibly child-wise) run of one scheduled unit ended.
enum SchedRun {
    /// The whole unit's result is in hand — either it ran whole, or every
    /// child ran here and the results were summed in derivation order
    /// (bit-identical to an unsplit run, except that per-child signature
    /// dedup can bank extra duplicate candidates, which global assembly
    /// removes again).
    Whole(Box<FreshDone>),
    /// The unit was split mid-run: `done` children completed here (a
    /// prefix, in derivation order, with their attempt seconds), `rest`
    /// remain. `budget: true` means the split preserved work at budget
    /// expiry (rest is abandoned to the journal); otherwise the rest goes
    /// back to the frontier for idle workers to steal.
    Split {
        done: Vec<(UnitRef, Box<FreshDone>, f64)>,
        rest: Vec<UnitRef>,
        budget: bool,
    },
    /// The wall-clock budget expired before anything finished; nothing is
    /// banked.
    Interrupted,
    /// The attempt failed (panic or per-unit deadline); retry the unit
    /// whole.
    Failed(String),
}

/// Runs a splittable unit child by child. Between children it checks the
/// budget (split-and-abandon preserves the finished prefix) and, after the
/// first child, whether any worker is idle (split-and-share). A panic or
/// deadline in any child fails the whole unit — the retry runs it whole,
/// so nothing is double-banked.
fn run_children(
    job: &SweepJob<'_>,
    children: &[UnitRef],
    run_start: Instant,
    opts: &SweepOptions,
    sched: &Scheduler,
    beat: &AtomicU64,
) -> SchedRun {
    let mut done: Vec<(UnitRef, Box<FreshDone>, f64)> = Vec::new();
    for (i, child) in children.iter().enumerate() {
        if opts.budget.is_some_and(|b| run_start.elapsed() >= b) {
            if done.is_empty() {
                return SchedRun::Interrupted;
            }
            return SchedRun::Split {
                done,
                rest: children[i..].to_vec(),
                budget: true,
            };
        }
        if i > 0 && sched.idle_waiters() > 0 {
            return SchedRun::Split {
                done,
                rest: children[i..].to_vec(),
                budget: false,
            };
        }
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_attempt(job, child, run_start, opts, false, beat)
        }));
        match outcome {
            Ok(Attempt::Done(fresh)) => {
                done.push((child.clone(), fresh, started.elapsed().as_secs_f64()));
            }
            Ok(Attempt::Interrupted) => {
                if done.is_empty() {
                    return SchedRun::Interrupted;
                }
                return SchedRun::Split {
                    done,
                    rest: children[i..].to_vec(),
                    budget: true,
                };
            }
            Ok(Attempt::Deadline) => return SchedRun::Failed("deadline exceeded".to_string()),
            Err(payload) => {
                return SchedRun::Failed(format!("panicked: {}", panic_message(payload)))
            }
        }
    }
    // Every child ran here: sum in derivation order, exactly the totals an
    // unsplit run would have journalled.
    let mut sum = FreshDone {
        result: UnitResult::default(),
        tally: ReducedCount::default(),
        checker: None,
    };
    for (_, fresh, _) in done {
        let FreshDone {
            result,
            tally,
            checker,
        } = *fresh;
        sum.result.visited += result.visited;
        sum.result.consistent += result.consistent;
        sum.result.drift += result.drift;
        sum.result.weighted_visited += result.weighted_visited;
        sum.result.weighted_consistent += result.weighted_consistent;
        sum.result.candidates.extend(result.candidates);
        sum.tally.add(tally);
        if let Some(t) = checker {
            match sum.checker.as_mut() {
                Some(total) => total.merge(t),
                None => sum.checker = Some(t),
            }
        }
    }
    SchedRun::Whole(Box::new(sum))
}

/// Builds every unit of the job (all sizes), with stable ids, in a
/// deterministic order. Ids are asserted unique — a collision would make
/// the journal ambiguous.
fn all_units(job: &SweepJob<'_>) -> Result<Vec<UnitRef>, SweepError> {
    let mut units = Vec::new();
    let mut ids = HashSet::new();
    for n in job.sizes() {
        for unit in work_units(job.config, n, job.symmetry) {
            let id = unit.stable_id(job.config, n);
            if !ids.insert(id) {
                return Err(SweepError::Config(format!(
                    "work-unit id collision on {id:#018x} — cannot journal this job"
                )));
            }
            units.push(UnitRef { n, id, unit });
        }
    }
    Ok(units)
}

fn meta_record(job: &SweepJob<'_>, shard: Option<(u32, u32)>) -> Record {
    let (shard_index, shard_count) = shard.unwrap_or((0, 1));
    Record::Meta {
        fingerprint: job.fingerprint(),
        events: job.events as u32,
        mode: job.mode.byte(),
        shard_index,
        shard_count,
    }
}

/// Folded journal state: completed units, still-standing quarantines and
/// recorded splits (parent id → child ids, in derivation order).
#[derive(Default)]
struct Replayed {
    completed: HashMap<u64, UnitResult>,
    quarantined: HashMap<u64, (u32, String)>,
    splits: HashMap<u64, Vec<u64>>,
}

fn fold_records(records: Vec<Record>) -> Replayed {
    let mut replayed = Replayed::default();
    for record in records {
        match record {
            Record::Meta { .. } => {}
            Record::Split {
                parent_id,
                child_ids,
            } => {
                replayed.splits.insert(parent_id, child_ids);
            }
            // Claims are provenance (which shard leased what, when); the
            // completions themselves carry the results.
            Record::Claim { .. } => {}
            Record::UnitDone {
                unit_id,
                visited,
                consistent,
                drift,
                weighted_visited,
                weighted_consistent,
                candidates,
            } => {
                // A completion supersedes any earlier quarantine of the
                // same unit (a resume retried it successfully).
                replayed.quarantined.remove(&unit_id);
                replayed.completed.insert(
                    unit_id,
                    UnitResult {
                        visited,
                        consistent,
                        drift,
                        weighted_visited,
                        weighted_consistent,
                        candidates,
                    },
                );
            }
            Record::Quarantine {
                unit_id,
                attempts,
                reason,
            } => {
                if !replayed.completed.contains_key(&unit_id) {
                    replayed.quarantined.insert(unit_id, (attempts, reason));
                }
            }
        }
    }
    replayed
}

/// Expands `roots` against the journalled `splits` into the frontier of
/// *leaves*: the units whose completions the final accounting expects.
/// A whole-unit completion always wins over a recorded split of the same
/// unit (the journal can hold both when a slow shard finished a unit that
/// was split and stolen elsewhere — the whole result already covers every
/// child). Order is deterministic: roots in their given order, children in
/// derivation order, depth first.
///
/// Splits are re-derived from the unit definition and validated against the
/// recorded child ids — a mismatch means the journal was written by a
/// different unit derivation and is unusable.
fn expand_leaves(
    job: &SweepJob<'_>,
    roots: &[UnitRef],
    splits: &HashMap<u64, Vec<u64>>,
    completed: &HashMap<u64, UnitResult>,
) -> Result<Vec<UnitRef>, SweepError> {
    fn walk(
        job: &SweepJob<'_>,
        unit: UnitRef,
        splits: &HashMap<u64, Vec<u64>>,
        completed: &HashMap<u64, UnitResult>,
        out: &mut Vec<UnitRef>,
    ) -> Result<(), SweepError> {
        let recorded = match splits.get(&unit.id) {
            Some(children) if !completed.contains_key(&unit.id) => children,
            _ => {
                out.push(unit);
                return Ok(());
            }
        };
        let children = split_unit(job.config, &unit.unit, unit.n, job.symmetry);
        let derived: Vec<u64> = children
            .iter()
            .map(|c| c.stable_id(job.config, unit.n))
            .collect();
        if derived != *recorded {
            return Err(SweepError::Config(format!(
                "journalled split of unit {:#018x} disagrees with its derivation \
                 ({} recorded vs {} derived children); refusing to continue",
                unit.id,
                recorded.len(),
                derived.len()
            )));
        }
        for (child, id) in children.into_iter().zip(derived) {
            walk(
                job,
                UnitRef {
                    n: unit.n,
                    id,
                    unit: child,
                },
                splits,
                completed,
                out,
            )?;
        }
        Ok(())
    }

    let mut out = Vec::with_capacity(roots.len());
    for root in roots {
        walk(job, root.clone(), splits, completed, &mut out)?;
    }
    Ok(out)
}

/// Resolves the result covering `id`'s whole subspace: its own completion,
/// or — when the journal records a split — the sum of its children's
/// resolved results, in derivation order. `None` while any descendant leaf
/// is missing.
fn resolve_result(
    id: u64,
    splits: &HashMap<u64, Vec<u64>>,
    raw: &HashMap<u64, UnitResult>,
) -> Option<UnitResult> {
    if let Some(r) = raw.get(&id) {
        return Some(r.clone());
    }
    let children = splits.get(&id)?;
    let mut sum = UnitResult::default();
    for child in children {
        let r = resolve_result(*child, splits, raw)?;
        sum.visited += r.visited;
        sum.consistent += r.consistent;
        sum.drift += r.drift;
        sum.weighted_visited += r.weighted_visited;
        sum.weighted_consistent += r.weighted_consistent;
        sum.candidates.extend(r.candidates);
    }
    Some(sum)
}

/// The deterministic accounting frontier: `roots` refined by the pre-split
/// rule alone (still splittable and weight bound above `threshold`),
/// stopping early at journalled completions. Mid-run steal and budget
/// splits — which are timing-dependent — happen strictly *below* this
/// frontier and are rolled back up to it by [`resolve_result`], so
/// `total_units` and friends never depend on how a particular run happened
/// to dice the work: a clean run, the sum over static shards and every
/// resume all count the same frontier.
fn accounting_frontier(
    job: &SweepJob<'_>,
    roots: &[UnitRef],
    sched: bool,
    threshold: u64,
    completed: &HashMap<u64, UnitResult>,
) -> Vec<UnitRef> {
    let mut out = Vec::new();
    let mut stack: Vec<UnitRef> = roots.iter().rev().cloned().collect();
    while let Some(unit) = stack.pop() {
        if sched
            && !completed.contains_key(&unit.id)
            && unit.unit.splittable(unit.n)
            && unit_weight(job.config, &unit.unit, unit.n) > threshold
        {
            for child in split_unit(job.config, &unit.unit, unit.n, job.symmetry)
                .into_iter()
                .rev()
            {
                let id = child.stable_id(job.config, unit.n);
                stack.push(UnitRef {
                    n: unit.n,
                    id,
                    unit: child,
                });
            }
        } else {
            out.push(unit);
        }
    }
    out
}

/// Opens (or creates) the journal for this run, replaying any prior state.
fn open_journal(
    job: &SweepJob<'_>,
    opts: &SweepOptions,
) -> Result<(JournalWriter, Replayed), SweepError> {
    std::fs::create_dir_all(&opts.checkpoint)?;
    let path = opts.checkpoint.join(JOURNAL_FILE);
    let meta = meta_record(job, opts.shard);
    let existing = journal::load(&path)?;
    match existing {
        None => Ok((
            JournalWriter::create(&path, &meta, opts.sync_batch)?,
            Replayed::default(),
        )),
        Some(loaded) if !opts.resume => Err(SweepError::Config(format!(
            "checkpoint journal {} already exists ({} record(s)); pass --resume to \
             continue it or remove the directory to start over",
            path.display(),
            loaded.records.len()
        ))),
        Some(loaded) => {
            match loaded.records.first() {
                Some(found @ Record::Meta { .. }) => {
                    if *found != meta {
                        return Err(SweepError::Config(format!(
                            "checkpoint journal {} was written by a different sweep \
                             (its configuration, models, event bound or shard disagree); \
                             refusing to resume",
                            path.display()
                        )));
                    }
                }
                _ => {
                    return Err(SweepError::Config(format!(
                        "checkpoint journal {} has no meta record; refusing to resume",
                        path.display()
                    )))
                }
            }
            let writer = JournalWriter::reopen(&path, loaded.valid_len, opts.sync_batch)?;
            Ok((writer, fold_records(loaded.records)))
        }
    }
}

/// Runs one attempt at a unit, mirroring the sinks of
/// `tm_synth::synthesise_suites` / the counts sweep exactly — one
/// implementation per mode, shared between interrupted and uninterrupted
/// runs, is what makes their results identical.
fn run_attempt(
    job: &SweepJob<'_>,
    unit: &UnitRef,
    run_start: Instant,
    opts: &SweepOptions,
    stall: bool,
    beat: &AtomicU64,
) -> Attempt {
    let attempt_start = Instant::now();
    let budget_hit = || opts.budget.is_some_and(|b| run_start.elapsed() >= b);
    let deadline_hit = || {
        opts.unit_deadline
            .is_some_and(|d| attempt_start.elapsed() >= d)
    };
    // The beat ticks prove forward progress to the lease monitor: only the
    // enumeration's stop hook advances it, so a genuinely wedged unit lets
    // its lease go stale and be stolen.
    let should_stop = || {
        beat.fetch_add(1, Ordering::Relaxed);
        budget_hit() || deadline_hit()
    };

    if stall {
        // An injected stall: the unit never finishes. Poll the stop
        // conditions directly — deliberately NOT ticking the beat, so a
        // stalled unit's lease goes stale and another shard can steal it —
        // and cap the sleep so a stall without a deadline or budget cannot
        // hang a test forever.
        let cap = Duration::from_secs(30);
        while !(budget_hit() || deadline_hit()) && attempt_start.elapsed() < cap {
            std::thread::sleep(Duration::from_millis(2));
        }
        return if budget_hit() {
            Attempt::Interrupted
        } else {
            Attempt::Deadline
        };
    }

    let mut result = UnitResult::default();
    let mut checker_telemetry: Option<CheckerTelemetry> = None;
    let tally = match job.mode {
        SweepMode::Counts => {
            if let Some(mut checker) = job.model.incremental_checker() {
                let tally = expand_unit(
                    job,
                    unit,
                    &mut |exec: &Execution, delta: &Delta, orbit: u64| {
                        checker.advance(exec, delta);
                        let ok = checker.is_consistent(exec);
                        if ok {
                            result.consistent += 1;
                            result.weighted_consistent += orbit;
                        }
                        if let Some(reference) = job.reference {
                            if reference.is_consistent(exec) != ok {
                                result.drift += 1;
                            }
                        }
                    },
                    should_stop,
                );
                checker_telemetry = checker.telemetry();
                tally
            } else {
                expand_unit(
                    job,
                    unit,
                    &mut |exec: &Execution, _delta: &Delta, orbit: u64| {
                        let ok = job.model.is_consistent(exec);
                        if ok {
                            result.consistent += 1;
                            result.weighted_consistent += orbit;
                        }
                        if let Some(reference) = job.reference {
                            if reference.is_consistent(exec) != ok {
                                result.drift += 1;
                            }
                        }
                    },
                    should_stop,
                )
            }
        }
        SweepMode::Suites => {
            let baseline = job.baseline.expect("suites mode requires a baseline");
            let incremental = job.model.incremental_checker().is_some()
                && baseline.incremental_checker().is_some();
            // Per-unit signature filter: cheap duplicate suppression inside
            // the unit; the global deduplication happens at assembly.
            let mut seen: HashSet<CanonSig> = HashSet::new();
            if incremental {
                let mut tm_checker = job.model.incremental_checker().expect("probed above");
                let mut base_checker = baseline.incremental_checker().expect("probed above");
                let mut probe_buf: Option<Execution> = None;
                let tally = expand_unit(
                    job,
                    unit,
                    &mut |exec: &Execution, delta: &Delta, _orbit: u64| {
                        // Thread the delta before any early-out, exactly as
                        // the live pipeline does.
                        tm_checker.advance(exec, delta);
                        base_checker.advance(exec, delta);
                        if exec.stxn.is_empty() {
                            return;
                        }
                        if tm_checker.is_consistent(exec) || !base_checker.is_consistent(exec) {
                            return;
                        }
                        let sig = canonical_signature(exec);
                        if !seen.insert(sig) {
                            return;
                        }
                        if !minimal_under_weakenings(tm_checker.as_mut(), exec, &mut probe_buf) {
                            return;
                        }
                        result.candidates.push(encode_execution(exec));
                    },
                    should_stop,
                );
                checker_telemetry = match (tm_checker.telemetry(), base_checker.telemetry()) {
                    (Some(mut a), Some(b)) => {
                        a.merge(b);
                        Some(a)
                    }
                    (one, other) => one.or(other),
                };
                tally
            } else {
                expand_unit(
                    job,
                    unit,
                    &mut |exec: &Execution, _delta: &Delta, _orbit: u64| {
                        if exec.txn_classes().is_empty() {
                            return;
                        }
                        let view = ExecView::new(exec);
                        if job.model.is_consistent_view(&view)
                            || !baseline.is_consistent_view(&view)
                        {
                            return;
                        }
                        let sig = canonical_signature(exec);
                        if !seen.insert(sig) {
                            return;
                        }
                        if !tm_synth::weakenings(exec)
                            .iter()
                            .all(|w| job.model.is_consistent(w))
                        {
                            return;
                        }
                        result.candidates.push(encode_execution(exec));
                    },
                    should_stop,
                )
            }
        }
    };

    // Did a stop hook truncate the enumeration? The budget check wins
    // (conservative: a unit that finished exactly as the budget expired is
    // left pending and re-run on resume).
    if budget_hit() {
        return Attempt::Interrupted;
    }
    if deadline_hit() {
        return Attempt::Deadline;
    }
    result.visited = tally.representatives as u64;
    result.weighted_visited = tally.weighted;
    Attempt::Done(Box::new(FreshDone {
        result,
        tally,
        checker: checker_telemetry,
    }))
}

/// Expands one unit in the job's [`Symmetry`] mode, handing every visited
/// execution (with its orbit size — always 1 under [`Symmetry::Full`]) to
/// `sink`. Returns the enumeration tally (kill counters are zero in full
/// mode, and `weighted == representatives`).
fn expand_unit(
    job: &SweepJob<'_>,
    unit: &UnitRef,
    sink: &mut impl FnMut(&Execution, &Delta, u64),
    should_stop: impl Fn() -> bool,
) -> ReducedCount {
    match job.symmetry {
        Symmetry::Full => {
            let visited = enumerate_unit_incremental(
                job.config,
                &unit.unit,
                unit.n,
                &mut |exec: &Execution, delta: &Delta| sink(exec, delta, 1),
                should_stop,
            );
            ReducedCount {
                representatives: visited,
                weighted: visited as u64,
                ..ReducedCount::default()
            }
        }
        Symmetry::Reduced => {
            enumerate_unit_reduced(job.config, &unit.unit, unit.n, sink, should_stop)
        }
    }
}

/// The configured worker thread count — explicit option, `TM_SYNTH_THREADS`
/// or the machine's parallelism — before clamping to the pending unit
/// count. The pre-split threshold derives from this (not from
/// [`worker_threads`]) so it cannot depend on how much work happens to be
/// pending.
fn configured_threads(opts: &SweepOptions) -> usize {
    opts.threads
        .or_else(|| {
            std::env::var("TM_SYNTH_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
}

fn worker_threads(opts: &SweepOptions, todo: usize) -> usize {
    configured_threads(opts).clamp(1, todo.max(1))
}

/// Runs (or resumes) a checkpointed sweep. See the module docs for the
/// fault model; see [`SweepOutcome`] for what comes back.
pub fn run_sweep(job: &SweepJob<'_>, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
    if job.mode == SweepMode::Suites && job.baseline.is_none() {
        return Err(SweepError::Config(
            "suites mode requires a baseline model".to_string(),
        ));
    }
    if let Some((i, m)) = opts.shard {
        if m == 0 || i >= m {
            return Err(SweepError::Config(format!(
                "bad shard {i}/{m} (expected 0 <= i < m)"
            )));
        }
    }

    let lease_mode = opts.lease_dir.is_some();
    if lease_mode && opts.shard.is_none() {
        return Err(SweepError::Config(
            "a shared lease directory requires a shard spec (claims are stamped with the \
             shard index)"
                .to_string(),
        ));
    }

    let sweep_start = Instant::now();
    let units = all_units(job)?;
    // The pre-split threshold derives from the WHOLE job's weight and the
    // configured thread count — never from the shard slice or the pending
    // count — so a clean run, every static shard and every lease shard
    // split the same units the same way and their journals and totals stay
    // interchangeable.
    let full_weight: u64 = if opts.sched {
        units
            .iter()
            .map(|u| unit_weight(job.config, &u.unit, u.n))
            .fold(0u64, u64::saturating_add)
    } else {
        0
    };
    // Static sharding slices the space by id; a lease shard sees the whole
    // frontier and lets the claims decide who runs what.
    let roots: Vec<UnitRef> = match opts.shard {
        Some((i, m)) if !lease_mode => units
            .into_iter()
            .filter(|u| u.id % u64::from(m) == u64::from(i))
            .collect(),
        _ => units,
    };

    let (mut writer, replayed) = open_journal(job, opts)?;
    let mut splits = replayed.splits;
    let leaves = expand_leaves(job, &roots, &splits, &replayed.completed)?;
    // Dynamic leaves already completed per the journal — the progress
    // display's notion of "done so far".
    let dynamic_done = leaves
        .iter()
        .filter(|u| replayed.completed.contains_key(&u.id))
        .count();

    // Pre-split: refine any pending leaf whose weight bound exceeds the
    // threshold, journalling each split so a resume replays the same
    // frontier. Quarantined units stay in the frontier — resume is the
    // operator's signal to try them again.
    let threshold = opts
        .max_unit_weight
        .unwrap_or_else(|| full_weight / (4 * configured_threads(opts) as u64).max(1))
        .max(1);
    // The accounting frontier (see `accounting_frontier`): what
    // `total_units`, `completed_units` and `per_unit` count, immune to
    // timing-dependent mid-run splits.
    let scope_frontier =
        accounting_frontier(job, &roots, opts.sched, threshold, &replayed.completed);
    let reused_units = scope_frontier
        .iter()
        .filter(|u| resolve_result(u.id, &splits, &replayed.completed).is_some())
        .count();
    let mut todo: Vec<UnitRef> = Vec::new();
    let mut presplits = 0u64;
    {
        let mut worklist: Vec<UnitRef> = leaves
            .iter()
            .filter(|u| !replayed.completed.contains_key(&u.id))
            .cloned()
            .collect();
        worklist.reverse();
        while let Some(unit) = worklist.pop() {
            if opts.sched
                && unit.unit.splittable(unit.n)
                && unit_weight(job.config, &unit.unit, unit.n) > threshold
            {
                let children = split_unit(job.config, &unit.unit, unit.n, job.symmetry);
                let child_ids: Vec<u64> = children
                    .iter()
                    .map(|c| c.stable_id(job.config, unit.n))
                    .collect();
                writer.append(&Record::Split {
                    parent_id: unit.id,
                    child_ids: child_ids.clone(),
                })?;
                splits.insert(unit.id, child_ids.clone());
                presplits += 1;
                for (child, id) in children.into_iter().zip(child_ids).rev() {
                    worklist.push(UnitRef {
                        n: unit.n,
                        id,
                        unit: child,
                    });
                }
            } else {
                todo.push(unit);
            }
        }
    }
    let todo_len = todo.len();
    // The dynamic frontier after pre-splitting: completed leaves plus
    // pending ones. Display-only — accounting uses `scope_frontier`.
    let total_leaves = dynamic_done + todo_len;

    let tasks: Vec<Task> = todo
        .into_iter()
        .map(|u| {
            let weight = if opts.sched {
                unit_weight(job.config, &u.unit, u.n)
            } else {
                0
            };
            Task {
                weight,
                unit: u,
                hold: None,
            }
        })
        .collect();

    let journal = Mutex::new(writer);
    let results: Mutex<HashMap<u64, UnitResult>> = Mutex::new(replayed.completed);
    let quarantined: Mutex<Vec<QuarantinedUnit>> = Mutex::new(Vec::new());
    let retried_attempts = AtomicU64::new(0);
    let fail_state = opts.fail_plan.map(FailState::new);
    let obs = &opts.obs;
    let fresh_reports: Mutex<Vec<UnitReport>> = Mutex::new(Vec::new());
    let prune_total: Mutex<ReducedCount> = Mutex::new(ReducedCount::default());
    let checker_total: Mutex<Option<CheckerTelemetry>> = Mutex::new(None);
    let splits_final: Mutex<HashMap<u64, Vec<u64>>> = Mutex::new(splits);
    // Accounting-frontier leaves another shard completed first (discovered
    // through their done markers): out of this shard's scope.
    let foreign: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let lease = match &opts.lease_dir {
        Some(dir) => Some(LeaseManager::new(
            dir,
            opts.shard.map(|(i, _)| i).unwrap_or(0),
            opts.launch,
        )?),
        None => None,
    };
    let lease = lease.as_ref();
    let held: Mutex<HashMap<u64, Arc<LeaseHold>>> = Mutex::new(HashMap::new());
    let sched = Scheduler::new(tasks, opts.sched);
    let progress = ProgressState {
        total: AtomicUsize::new(total_leaves),
        done: AtomicUsize::new(dynamic_done),
        fresh: AtomicUsize::new(0),
        visited: AtomicU64::new(0),
        weighted: AtomicU64::new(0),
        splits: AtomicU64::new(presplits),
        steals: AtomicU64::new(0),
    };
    let setup_seconds = sweep_start.elapsed().as_secs_f64();
    let run_start = Instant::now();
    let threads = worker_threads(opts, todo_len);
    let io_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let monitor_stop = AtomicBool::new(false);

    if obs.is_enabled() {
        obs.emit(
            Event::new("sweep.start")
                .field("units", total_leaves)
                .field("reused", reused_units)
                .field("presplit", presplits)
                .field("threads", threads),
        );
    }
    obs.counter("sweep.units.reused").add(reused_units as u64);
    obs.counter("sweep.sched.presplit").add(presplits);

    // Shared per-completion banking: journal, metrics, telemetry,
    // progress. Declared before the worker scope so the spawned closures
    // can borrow it for the scope's whole lifetime.
    let bank = |unit: &UnitRef, fresh: FreshDone, seconds: f64, attempts: u32| -> io::Result<()> {
        let FreshDone {
            result,
            tally,
            checker,
        } = fresh;
        let record = Record::UnitDone {
            unit_id: unit.id,
            visited: result.visited,
            consistent: result.consistent,
            drift: result.drift,
            weighted_visited: result.weighted_visited,
            weighted_consistent: result.weighted_consistent,
            candidates: result.candidates.clone(),
        };
        journal.lock().unwrap().append(&record)?;
        record_unit_metrics(obs, &result, &tally, checker.as_ref());
        if obs.is_enabled() {
            obs.emit(
                Event::new("unit.complete")
                    .field("unit", format!("{:#018x}", unit.id))
                    .field("seconds", seconds)
                    .field("visited", result.visited)
                    .field("weighted", result.weighted_visited)
                    .field("candidates", result.candidates.len()),
            );
        }
        fresh_reports.lock().unwrap().push(UnitReport {
            unit_id: unit.id,
            label: unit.unit.label(),
            events: unit.n,
            reused: false,
            seconds,
            attempts,
            visited: result.visited,
            weighted_visited: result.weighted_visited,
        });
        prune_total.lock().unwrap().add(tally);
        if let Some(t) = checker {
            let mut total = checker_total.lock().unwrap();
            match total.as_mut() {
                Some(sum) => sum.merge(t),
                None => *total = Some(t),
            }
        }
        progress.done.fetch_add(1, Ordering::Relaxed);
        progress.fresh.fetch_add(1, Ordering::Relaxed);
        progress
            .visited
            .fetch_add(result.visited, Ordering::Relaxed);
        progress
            .weighted
            .fetch_add(result.weighted_visited, Ordering::Relaxed);
        results.lock().unwrap().insert(unit.id, result);
        Ok(())
    };
    // Settles one finished (completed or quarantined) job slot under a
    // lease hold; the last slot completes the lease (done marker).
    let settle_hold = |hold: &Option<Arc<LeaseHold>>| {
        if let (Some(l), Some(h)) = (lease, hold.as_ref()) {
            if h.left.fetch_sub(1, Ordering::SeqCst) == 1 {
                l.complete(h.unit_id);
                held.lock().unwrap().remove(&h.unit_id);
            }
        }
    };

    std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            monitor_loop(&progress, run_start, opts, &monitor_stop, lease, &held);
        });
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let dummy_beat = AtomicU64::new(0);
                    'units: loop {
                        if opts.budget.is_some_and(|b| run_start.elapsed() >= b) {
                            break;
                        }
                        let mut task = match sched.next() {
                            Dispatch::Run(task) => task,
                            Dispatch::Wait => {
                                // A standing steal request: whoever runs a
                                // splittable unit sees the idle count and
                                // hands back its unfinished children.
                                sched.idle.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(2));
                                sched.idle.fetch_sub(1, Ordering::SeqCst);
                                continue;
                            }
                            Dispatch::Rescan(parked) => {
                                let mut blocked = Vec::new();
                                for t in parked {
                                    match lease {
                                        Some(l) if l.is_done(t.unit.id) => {
                                            // Another shard finished it:
                                            // out of our scope.
                                            if foreign.lock().unwrap().insert(t.unit.id) {
                                                progress.total.fetch_sub(1, Ordering::Relaxed);
                                            }
                                        }
                                        _ => blocked.push(t),
                                    }
                                }
                                if !blocked.is_empty() {
                                    // The holders are alive (or not yet
                                    // reaped): back off before reclaiming.
                                    std::thread::sleep(Duration::from_millis(50));
                                    sched.push(blocked);
                                }
                                sched.finish();
                                continue;
                            }
                            Dispatch::Drained => break,
                        };
                        if let Some(l) = lease {
                            // Claim before running; split-off children
                            // already run under their parent's claim.
                            if task.hold.is_none() {
                                match l.try_claim(task.unit.id) {
                                    Ok(true) => {
                                        let record = Record::Claim {
                                            unit_id: task.unit.id,
                                            shard_index: opts.shard.map(|(i, _)| i).unwrap_or(0),
                                            launch: opts.launch,
                                        };
                                        if let Err(e) = journal.lock().unwrap().append(&record) {
                                            *io_error.lock().unwrap() = Some(e);
                                            sched.finish();
                                            break 'units;
                                        }
                                        obs.counter("sweep.lease.claims").incr();
                                        let hold = Arc::new(LeaseHold {
                                            unit_id: task.unit.id,
                                            beat: AtomicU64::new(0),
                                            left: AtomicUsize::new(1),
                                        });
                                        held.lock()
                                            .unwrap()
                                            .insert(task.unit.id, Arc::clone(&hold));
                                        task.hold = Some(hold);
                                    }
                                    Ok(false) => {
                                        if l.is_done(task.unit.id) {
                                            if foreign.lock().unwrap().insert(task.unit.id) {
                                                progress.total.fetch_sub(1, Ordering::Relaxed);
                                            }
                                        } else {
                                            obs.counter("sweep.lease.conflicts").incr();
                                            sched.defer(task);
                                        }
                                        sched.finish();
                                        continue;
                                    }
                                    Err(e) => {
                                        *io_error.lock().unwrap() = Some(e);
                                        sched.finish();
                                        break 'units;
                                    }
                                }
                            }
                        }
                        let task = task;
                        let beat: &AtomicU64 =
                            task.hold.as_ref().map(|h| &h.beat).unwrap_or(&dummy_beat);
                        if let Some(fail) = &fail_state {
                            fail.on_claim(task.unit.id);
                            if fail.is_victim(task.unit.id) && fail.plan.kind == FailKind::Exit {
                                // Simulate a hard crash: flush what is banked,
                                // then die. (The sync means the test can reason
                                // about exactly which units survived.)
                                let _ = journal.lock().unwrap().sync();
                                std::process::exit(INJECTED_EXIT_CODE);
                            }
                        }
                        let mut attempt_no = 0u32;
                        loop {
                            attempt_no += 1;
                            let (injected_panic, stall) = match &fail_state {
                                Some(fail) if fail.is_victim(task.unit.id) => {
                                    match fail.plan.kind {
                                        FailKind::Panic => (true, false),
                                        FailKind::PanicOnce => {
                                            (!fail.once_fired.swap(true, Ordering::SeqCst), false)
                                        }
                                        FailKind::Stall => (false, true),
                                        FailKind::Exit => (false, false),
                                    }
                                }
                                _ => (false, false),
                            };
                            if obs.is_enabled() {
                                obs.emit(
                                    Event::new("unit.start")
                                        .field("unit", format!("{:#018x}", task.unit.id))
                                        .field("label", task.unit.unit.label())
                                        .field("events", task.unit.n)
                                        .field("attempt", u64::from(attempt_no)),
                                );
                            }
                            let attempt_started = Instant::now();
                            // Child-wise execution (first attempt only, never
                            // on an injected victim): enables mid-run steals
                            // and budget-stop work preservation. Retries run
                            // whole, so a failed child-wise pass — which banks
                            // nothing — can never double-bank a child.
                            let childwise = opts.sched
                                && !injected_panic
                                && !stall
                                && attempt_no == 1
                                && task.unit.unit.splittable(task.unit.n);
                            let run = if childwise {
                                let children: Vec<UnitRef> = split_unit(
                                    job.config,
                                    &task.unit.unit,
                                    task.unit.n,
                                    job.symmetry,
                                )
                                .into_iter()
                                .map(|c| UnitRef {
                                    n: task.unit.n,
                                    id: c.stable_id(job.config, task.unit.n),
                                    unit: c,
                                })
                                .collect();
                                run_children(job, &children, run_start, opts, &sched, beat)
                            } else {
                                let outcome = catch_unwind(AssertUnwindSafe(|| {
                                    if injected_panic {
                                        panic!("injected panic (fail plan)");
                                    }
                                    run_attempt(job, &task.unit, run_start, opts, stall, beat)
                                }));
                                match outcome {
                                    Ok(Attempt::Done(fresh)) => SchedRun::Whole(fresh),
                                    Ok(Attempt::Interrupted) => SchedRun::Interrupted,
                                    Ok(Attempt::Deadline) => {
                                        SchedRun::Failed("deadline exceeded".to_string())
                                    }
                                    Err(payload) => SchedRun::Failed(format!(
                                        "panicked: {}",
                                        panic_message(payload)
                                    )),
                                }
                            };
                            let failure_reason = match run {
                                SchedRun::Whole(fresh) => {
                                    let seconds = attempt_started.elapsed().as_secs_f64();
                                    if let Err(e) = bank(&task.unit, *fresh, seconds, attempt_no) {
                                        *io_error.lock().unwrap() = Some(e);
                                        sched.finish();
                                        break 'units;
                                    }
                                    settle_hold(&task.hold);
                                    sched.finish();
                                    break;
                                }
                                SchedRun::Interrupted => {
                                    // Budget expiry with nothing banked: the
                                    // unit stays pending (its lease, if any,
                                    // is released after the scope).
                                    sched.finish();
                                    break 'units;
                                }
                                SchedRun::Split { done, rest, budget } => {
                                    let child_ids: Vec<u64> = done
                                        .iter()
                                        .map(|(u, _, _)| u.id)
                                        .chain(rest.iter().map(|u| u.id))
                                        .collect();
                                    let record = Record::Split {
                                        parent_id: task.unit.id,
                                        child_ids: child_ids.clone(),
                                    };
                                    if let Err(e) = journal.lock().unwrap().append(&record) {
                                        *io_error.lock().unwrap() = Some(e);
                                        sched.finish();
                                        break 'units;
                                    }
                                    splits_final.lock().unwrap().insert(task.unit.id, child_ids);
                                    obs.counter("sweep.sched.splits").incr();
                                    progress.splits.fetch_add(1, Ordering::Relaxed);
                                    progress
                                        .total
                                        .fetch_add(done.len() + rest.len() - 1, Ordering::Relaxed);
                                    if let Some(h) = &task.hold {
                                        // The rest children each take a slot
                                        // under the claim, added before the
                                        // parent slot settles so the count
                                        // cannot dip to zero early.
                                        h.left.fetch_add(rest.len(), Ordering::SeqCst);
                                    }
                                    let mut io_failed = false;
                                    for (child, fresh, seconds) in done {
                                        if let Err(e) = bank(&child, *fresh, seconds, attempt_no) {
                                            *io_error.lock().unwrap() = Some(e);
                                            io_failed = true;
                                            break;
                                        }
                                    }
                                    if io_failed {
                                        sched.finish();
                                        break 'units;
                                    }
                                    if budget {
                                        // Work preserved: the finished prefix
                                        // is journalled; the rest resumes from
                                        // the Split record.
                                        settle_hold(&task.hold);
                                        sched.finish();
                                        break 'units;
                                    }
                                    let stolen = rest.len() as u64;
                                    obs.counter("sweep.sched.steals").add(stolen);
                                    progress.steals.fetch_add(stolen, Ordering::Relaxed);
                                    let shared: Vec<Task> = rest
                                        .into_iter()
                                        .map(|u| {
                                            let weight = unit_weight(job.config, &u.unit, u.n);
                                            Task {
                                                weight,
                                                unit: u,
                                                hold: task.hold.clone(),
                                            }
                                        })
                                        .collect();
                                    sched.push(shared);
                                    settle_hold(&task.hold);
                                    sched.finish();
                                    break;
                                }
                                SchedRun::Failed(reason) => reason,
                            };
                            if attempt_no > opts.retries {
                                let record = Record::Quarantine {
                                    unit_id: task.unit.id,
                                    attempts: attempt_no,
                                    reason: failure_reason.clone(),
                                };
                                {
                                    let mut j = journal.lock().unwrap();
                                    // Quarantines are synced eagerly regardless
                                    // of batching: losing one would silently
                                    // re-run a poisoned unit forever.
                                    if let Err(e) = j.append(&record).and_then(|()| j.sync()) {
                                        *io_error.lock().unwrap() = Some(e);
                                        sched.finish();
                                        break 'units;
                                    }
                                }
                                obs.counter("sweep.units.quarantined").incr();
                                if obs.is_enabled() {
                                    obs.emit(
                                        Event::new("unit.quarantine")
                                            .field("unit", format!("{:#018x}", task.unit.id))
                                            .field("attempts", u64::from(attempt_no))
                                            .field("reason", failure_reason.clone()),
                                    );
                                }
                                quarantined.lock().unwrap().push(QuarantinedUnit {
                                    unit_id: task.unit.id,
                                    attempts: attempt_no,
                                    reason: failure_reason,
                                    label: task.unit.unit.label(),
                                });
                                // A quarantine is a handled unit: the lease
                                // completes (done marker) so other shards do
                                // not re-run a poisoned unit.
                                settle_hold(&task.hold);
                                sched.finish();
                                break;
                            }
                            retried_attempts.fetch_add(1, Ordering::Relaxed);
                            obs.counter("sweep.units.retried_attempts").incr();
                            if obs.is_enabled() {
                                obs.emit(
                                    Event::new("unit.retry")
                                        .field("unit", format!("{:#018x}", task.unit.id))
                                        .field("attempt", u64::from(attempt_no))
                                        .field("reason", failure_reason.clone()),
                                );
                            }
                            let exp = (attempt_no - 1).min(8);
                            let pause = opts.backoff.saturating_mul(1 << exp);
                            std::thread::sleep(pause.min(Duration::from_secs(2)));
                        }
                    }
                })
            })
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
        monitor_stop.store(true, Ordering::SeqCst);
        let _ = monitor.join();
    });

    // Whatever is still held was not completed (budget expiry, IO error):
    // release the leases so other shards — or the next launch — can claim
    // the units.
    if let Some(l) = lease {
        for hold in held.lock().unwrap().values() {
            l.release(hold.unit_id);
        }
    }

    let run_seconds = run_start.elapsed().as_secs_f64();
    journal.lock().unwrap().sync()?;
    if let Some(e) = io_error.into_inner().unwrap() {
        return Err(SweepError::Io(e));
    }

    let raw_results = results.into_inner().unwrap();
    let splits = splits_final.into_inner().unwrap();
    let foreign = foreign.into_inner().unwrap();
    let mut quarantined = quarantined.into_inner().unwrap();
    // Quarantines replayed from the journal still stand unless this run
    // completed the unit (they were in the frontier, so a fresh quarantine
    // or a completion replaced them; a budget stop can leave them
    // untouched).
    for (unit_id, (attempts, reason)) in replayed.quarantined {
        if !raw_results.contains_key(&unit_id) && !quarantined.iter().any(|q| q.unit_id == unit_id)
        {
            quarantined.push(QuarantinedUnit {
                unit_id,
                attempts,
                reason,
                label: String::new(),
            });
        }
    }

    // The accounting scope is the deterministic frontier computed at
    // setup; a lease shard additionally drops the leaves other shards
    // completed first (a drained lease run therefore accounts for exactly
    // the units it ran or quarantined itself — everything else was either
    // foreign or left pending by a budget stop).
    let mut scope_units = scope_frontier;
    if lease_mode {
        scope_units.retain(|u| !foreign.contains(&u.id));
    }
    // Roll mid-run split results up to that frontier: a leaf counts as
    // completed exactly when its whole subspace is covered, however the
    // work was diced.
    let results: HashMap<u64, UnitResult> = scope_units
        .iter()
        .filter_map(|u| resolve_result(u.id, &splits, &raw_results).map(|r| (u.id, r)))
        .collect();

    let scope_info: HashMap<u64, (String, usize)> = scope_units
        .iter()
        .map(|u| (u.id, (u.unit.label(), u.n)))
        .collect();
    let mut parent_of: HashMap<u64, u64> = HashMap::new();
    for (parent, children) in &splits {
        for child in children {
            parent_of.insert(*child, *parent);
        }
    }
    let to_scope = |mut id: u64| -> Option<u64> {
        loop {
            if scope_info.contains_key(&id) {
                return Some(id);
            }
            id = *parent_of.get(&id)?;
        }
    };

    // Lift quarantines of split-off children to their accounting leaf; a
    // resolved leaf extinguishes them (a retry or another worker covered
    // the subspace) and out-of-scope ones are another shard's story.
    let mut lifted: Vec<QuarantinedUnit> = Vec::new();
    let mut lifted_ids: HashSet<u64> = HashSet::new();
    for q in quarantined {
        let Some(anchor) = to_scope(q.unit_id) else {
            continue;
        };
        if results.contains_key(&anchor) || !lifted_ids.insert(anchor) {
            continue;
        }
        let label = if anchor == q.unit_id {
            q.label
        } else {
            scope_info[&anchor].0.clone()
        };
        lifted.push(QuarantinedUnit {
            unit_id: anchor,
            attempts: q.attempts,
            reason: q.reason,
            label,
        });
    }
    let mut quarantined = lifted;
    quarantined.sort_by_key(|q| q.unit_id);

    // Aggregate fresh per-task reports to the accounting frontier: a leaf
    // that ran child-wise gets one entry carrying the children's summed
    // wall time and its rolled-up counts. Only resolved leaves are kept —
    // a budget stop can leave a leaf with banked children but no
    // completion, and `per_unit` lists completed units only.
    let mut fresh_agg: HashMap<u64, UnitReport> = HashMap::new();
    for r in fresh_reports.into_inner().unwrap() {
        let Some(anchor) = to_scope(r.unit_id) else {
            continue;
        };
        let (label, events) = &scope_info[&anchor];
        let entry = fresh_agg.entry(anchor).or_insert_with(|| UnitReport {
            unit_id: anchor,
            label: label.clone(),
            events: *events,
            reused: false,
            seconds: 0.0,
            attempts: 0,
            visited: 0,
            weighted_visited: 0,
        });
        entry.seconds += r.seconds;
        entry.attempts = entry.attempts.max(r.attempts);
    }
    let fresh: Vec<UnitReport> = fresh_agg
        .into_values()
        .filter_map(|mut r| {
            let resolved = results.get(&r.unit_id)?;
            r.visited = resolved.visited;
            r.weighted_visited = resolved.weighted_visited;
            Some(r)
        })
        .collect();

    // A single shard of a wider sweep holds too little to assemble suites;
    // that happens in `merge_sharded` once every shard's journal is in.
    let build_suites = opts.shard.is_none_or(|(_, m)| m == 1);
    let telemetry = RunTelemetry {
        fresh,
        prune: prune_total.into_inner().unwrap(),
        checker: checker_total.into_inner().unwrap(),
        setup_seconds,
        run_seconds,
    };
    let outcome = finalize(
        job,
        scope_units,
        results,
        quarantined,
        reused_units,
        build_suites,
        retried_attempts.into_inner(),
        telemetry,
    );
    if let Ok(outcome) = &outcome {
        if obs.is_enabled() {
            obs.emit(
                Event::new("sweep.done")
                    .field(
                        "status",
                        match outcome.status {
                            SweepStatus::Complete => "complete",
                            SweepStatus::Partial => "partial",
                            SweepStatus::BudgetExhausted => "budget-exhausted",
                        },
                    )
                    .field("completed", outcome.completed_units)
                    .field("quarantined", outcome.quarantined.len())
                    .field("seconds", outcome.timings.total_seconds),
            );
        }
        obs.flush();
    }
    outcome
}

/// Live progress shared between the workers and the monitor thread.
/// `total` moves: splits grow it, foreign completions shrink it — it
/// tracks the *dynamic* frontier, which is what a progress display should
/// show (accounting uses the static frontier instead).
struct ProgressState {
    total: AtomicUsize,
    done: AtomicUsize,
    fresh: AtomicUsize,
    visited: AtomicU64,
    weighted: AtomicU64,
    splits: AtomicU64,
    steals: AtomicU64,
}

impl ProgressState {
    fn heartbeat(&self, elapsed: Duration) -> Heartbeat {
        Heartbeat {
            done: self.done.load(Ordering::Relaxed) as u64,
            total: self.total.load(Ordering::Relaxed) as u64,
            fresh: self.fresh.load(Ordering::Relaxed) as u64,
            visited: self.visited.load(Ordering::Relaxed),
            weighted: self.weighted.load(Ordering::Relaxed),
            splits: self.splits.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            elapsed_seconds: elapsed.as_secs_f64(),
        }
    }
}

/// The monitor thread: rewrites the heartbeat file every ~500ms (always —
/// the shard supervisor aggregates them without any flag on the children),
/// feeds a sliding [`RateWindow`] that turns unit completions into the
/// progress line's ETA, refreshes this shard's held leases (only while
/// their beats advance — a wedged worker lets its lease go stale), and,
/// with `opts.progress`, repaints a `\r`-terminated progress line on
/// stderr every ~200ms, finishing with a newline-terminated final line.
fn monitor_loop(
    progress: &ProgressState,
    run_start: Instant,
    opts: &SweepOptions,
    stop: &AtomicBool,
    lease: Option<&LeaseManager>,
    held: &Mutex<HashMap<u64, Arc<LeaseHold>>>,
) {
    const TICK: Duration = Duration::from_millis(25);
    const PRINT_EVERY: u32 = 8; // ~200ms
    const HEARTBEAT_EVERY: u32 = 20; // ~500ms
    let mut tick = 0u32;
    let mut window = RateWindow::new(ETA_WINDOW_SECS);
    let mut last_beats: HashMap<u64, u64> = HashMap::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if tick.is_multiple_of(HEARTBEAT_EVERY) {
            let hb = progress.heartbeat(run_start.elapsed());
            window.push(hb.elapsed_seconds, hb.done as f64);
            hb.write(&opts.checkpoint);
            if let Some(l) = lease {
                // Refresh held leases whose beat advanced since last time;
                // first sight counts as progress (the claim is fresh).
                let holds: Vec<(u64, u64)> = held
                    .lock()
                    .unwrap()
                    .values()
                    .map(|h| (h.unit_id, h.beat.load(Ordering::Relaxed)))
                    .collect();
                last_beats.retain(|id, _| holds.iter().any(|(hid, _)| hid == id));
                for (unit_id, beat) in holds {
                    let advanced = match last_beats.get(&unit_id) {
                        Some(prev) => beat > *prev,
                        None => true,
                    };
                    if advanced {
                        last_beats.insert(unit_id, beat);
                        l.refresh(unit_id);
                    }
                }
            }
        }
        if opts.progress && tick.is_multiple_of(PRINT_EVERY) {
            let line = progress
                .heartbeat(run_start.elapsed())
                .progress_line(window.rate());
            eprint!("\r{line}");
            let _ = io::Write::flush(&mut io::stderr());
        }
        tick += 1;
        std::thread::sleep(TICK);
    }
    // Final state: a fresh heartbeat and, when printing, a line the
    // terminal keeps (and CI can grep).
    let heartbeat = progress.heartbeat(run_start.elapsed());
    window.push(heartbeat.elapsed_seconds, heartbeat.done as f64);
    heartbeat.write(&opts.checkpoint);
    if opts.progress {
        eprintln!("\r{}", heartbeat.progress_line(window.rate()));
    }
}

/// Per-run telemetry finalize folds into the outcome.
#[derive(Default)]
struct RunTelemetry {
    fresh: Vec<UnitReport>,
    prune: ReducedCount,
    checker: Option<CheckerTelemetry>,
    setup_seconds: f64,
    run_seconds: f64,
}

/// Folds one completed unit's counters into the registry. All-unit rollups
/// only — nothing here runs per candidate.
fn record_unit_metrics(
    obs: &Obs,
    result: &UnitResult,
    tally: &ReducedCount,
    checker: Option<&CheckerTelemetry>,
) {
    obs.counter("sweep.units.completed").incr();
    obs.counter("sweep.execs.visited").add(result.visited);
    obs.counter("sweep.execs.weighted")
        .add(result.weighted_visited);
    obs.counter("sweep.execs.consistent").add(result.consistent);
    obs.counter("synth.prune.shape_kills")
        .add(tally.shape_kills);
    obs.counter("synth.prune.subtree_kills")
        .add(tally.subtree_kills);
    obs.counter("synth.prune.edge_kills").add(tally.edge_kills);
    if let Some(t) = checker {
        obs.counter("ir.maintained").add(t.stats.maintained);
        obs.counter("ir.rebased").add(t.stats.rebased);
        obs.counter("ir.dropped").add(t.stats.dropped);
        obs.counter("ir.invalidated").add(t.stats.invalidated);
        obs.counter("ir.resets").add(t.stats.resets);
        obs.counter("ir.fix_reevals").add(t.stats.fix_reevals);
        obs.counter("ir.axiom_queries").add(t.stats.axiom_queries);
        obs.counter("ir.axiom_cache_hits")
            .add(t.stats.axiom_cache_hits);
        obs.counter("ir.early_exits").add(t.early_exits);
    }
}

/// Sums completed units into an outcome and (for unsharded suites runs)
/// assembles the suites.
#[allow(clippy::too_many_arguments)]
fn finalize(
    job: &SweepJob<'_>,
    shard_units: Vec<UnitRef>,
    results: HashMap<u64, UnitResult>,
    quarantined: Vec<QuarantinedUnit>,
    reused_units: usize,
    build_suites: bool,
    retried_attempts: u64,
    telemetry: RunTelemetry,
) -> Result<SweepOutcome, SweepError> {
    let assemble_start = Instant::now();
    let total_units = shard_units.len();
    let completed_units = shard_units
        .iter()
        .filter(|u| results.contains_key(&u.id))
        .count();
    let quarantined_here = shard_units
        .iter()
        .filter(|u| quarantined.iter().any(|q| q.unit_id == u.id))
        .count();
    let pending_units = total_units - completed_units - quarantined_here;

    let status = if pending_units > 0 {
        SweepStatus::BudgetExhausted
    } else if !quarantined.is_empty() {
        SweepStatus::Partial
    } else {
        SweepStatus::Complete
    };

    let mut visited = 0u64;
    let mut consistent = 0u64;
    let mut drift = 0u64;
    let mut weighted_visited = 0u64;
    let mut weighted_consistent = 0u64;
    for unit in &shard_units {
        if let Some(r) = results.get(&unit.id) {
            visited += r.visited;
            consistent += r.consistent;
            drift += r.drift;
            weighted_visited += r.weighted_visited;
            weighted_consistent += r.weighted_consistent;
        }
    }

    let suites = if job.mode == SweepMode::Suites && build_suites {
        Some(assemble(
            job,
            shard_units.iter().map(|u| u.id),
            &results,
            visited,
            weighted_visited,
        )?)
    } else {
        None
    };

    // One report entry per completed unit, in deterministic unit order —
    // fresh entries carry this run's timing, replayed ones their
    // journalled counts only.
    let fresh_by_id: HashMap<u64, &UnitReport> =
        telemetry.fresh.iter().map(|u| (u.unit_id, u)).collect();
    let per_unit: Vec<UnitReport> = shard_units
        .iter()
        .filter_map(|unit| {
            let result = results.get(&unit.id)?;
            Some(match fresh_by_id.get(&unit.id) {
                Some(fresh) => (*fresh).clone(),
                None => UnitReport {
                    unit_id: unit.id,
                    label: unit.unit.label(),
                    events: unit.n,
                    reused: true,
                    seconds: 0.0,
                    attempts: 0,
                    visited: result.visited,
                    weighted_visited: result.weighted_visited,
                },
            })
        })
        .collect();

    let assemble_seconds = assemble_start.elapsed().as_secs_f64();
    let timings = SweepTimings {
        setup_seconds: telemetry.setup_seconds,
        run_seconds: telemetry.run_seconds,
        assemble_seconds,
        total_seconds: telemetry.setup_seconds + telemetry.run_seconds + assemble_seconds,
    };

    Ok(SweepOutcome {
        status,
        visited,
        consistent,
        drift,
        weighted_visited,
        weighted_consistent,
        suites,
        total_units,
        completed_units,
        reused_units,
        pending_units,
        quarantined,
        retried_attempts,
        fresh_units: telemetry.fresh.len(),
        per_unit,
        prune: telemetry.prune,
        checker: telemetry.checker,
        timings,
    })
}

/// Decodes banked candidates from completed units and hands them — in a
/// deterministic order — to [`tm_synth::assemble_suites`]. Banked
/// candidates carry no timing, so `found_after` is zero throughout; two
/// structurally different witnesses of the same canonical test are ordered
/// by structural signature, making the surviving representative independent
/// of unit completion order.
fn assemble(
    job: &SweepJob<'_>,
    unit_ids: impl Iterator<Item = u64>,
    results: &HashMap<u64, UnitResult>,
    visited: u64,
    weighted_visited: u64,
) -> Result<SuiteReport, SweepError> {
    let mut decoded: Vec<(CanonSig, String, Execution)> = Vec::new();
    for id in unit_ids {
        let Some(result) = results.get(&id) else {
            continue;
        };
        for bytes in &result.candidates {
            let exec = decode_execution(bytes).map_err(|e| {
                SweepError::Config(format!(
                    "journal holds an undecodable candidate for unit {id:#018x}: {e}"
                ))
            })?;
            decoded.push((canonical_signature(&exec), exec.signature(), exec));
        }
    }
    decoded.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let candidates = decoded
        .into_iter()
        .map(|(sig, _, exec)| (sig, exec, Duration::ZERO))
        .collect();
    Ok(assemble_suites(
        job.model,
        job.events,
        visited as usize,
        weighted_visited,
        candidates,
        Instant::now(),
    ))
}

/// Merges the journals of a sharded sweep (one checkpoint directory per
/// shard) into a single outcome, assembling the suites when the union
/// covers the whole space. Shard journals are validated against `job`
/// (fingerprint, events, mode); which shard a unit came from is irrelevant
/// because units are deterministic.
///
/// With work stealing in play, the same unit can legitimately appear in
/// several journals: recorded splits must agree child-for-child, and
/// duplicated completions must agree on every count (a stolen-and-also-
/// finished unit ran twice — the runs being deterministic, any
/// disagreement means a corrupted or foreign journal). Candidate *lists*
/// may differ between a whole run and a child-wise run of the same unit
/// (per-child signature dedup can bank extra duplicates); global assembly
/// removes those again, so the first-seen list is kept.
pub fn merge_sharded(job: &SweepJob<'_>, dirs: &[PathBuf]) -> Result<SweepOutcome, SweepError> {
    let units = all_units(job)?;
    let mut results: HashMap<u64, UnitResult> = HashMap::new();
    let mut quarantines: HashMap<u64, (u32, String)> = HashMap::new();
    let mut splits: HashMap<u64, Vec<u64>> = HashMap::new();

    let expected_fingerprint = job.fingerprint();
    for dir in dirs {
        let path = dir.join(JOURNAL_FILE);
        let loaded = journal::load(&path)?
            .ok_or_else(|| SweepError::Config(format!("no journal at {}", path.display())))?;
        match loaded.records.first() {
            Some(Record::Meta {
                fingerprint,
                events,
                mode,
                ..
            }) if *fingerprint == expected_fingerprint
                && *events == job.events as u32
                && *mode == job.mode.byte() => {}
            _ => {
                return Err(SweepError::Config(format!(
                    "journal {} belongs to a different sweep; refusing to merge",
                    path.display()
                )))
            }
        }
        let replayed = fold_records(loaded.records);
        for (id, children) in replayed.splits {
            match splits.get(&id) {
                Some(prev) if *prev != children => {
                    return Err(SweepError::Config(format!(
                        "journal {} records a different split of unit {id:#018x} than an \
                         earlier shard; refusing to merge",
                        path.display()
                    )));
                }
                Some(_) => {}
                None => {
                    splits.insert(id, children);
                }
            }
        }
        for (id, result) in replayed.completed {
            match results.get(&id) {
                Some(prev) => {
                    if (
                        prev.visited,
                        prev.consistent,
                        prev.drift,
                        prev.weighted_visited,
                        prev.weighted_consistent,
                    ) != (
                        result.visited,
                        result.consistent,
                        result.drift,
                        result.weighted_visited,
                        result.weighted_consistent,
                    ) {
                        return Err(SweepError::Config(format!(
                            "journal {} disagrees with an earlier shard on unit \
                             {id:#018x}'s counts; refusing to merge",
                            path.display()
                        )));
                    }
                }
                None => {
                    results.insert(id, result);
                }
            }
        }
        for (id, q) in replayed.quarantined {
            quarantines.entry(id).or_insert(q);
        }
    }
    quarantines.retain(|id, _| !results.contains_key(id));

    // The merged scope is the dynamic frontier under every recorded split
    // (completions win over splits, as always); results and quarantines on
    // non-leaves — a parent that was both completed whole somewhere and
    // split elsewhere — are dropped in favour of the leaves.
    let leaves = expand_leaves(job, &units, &splits, &results)?;
    let leaf_ids: HashSet<u64> = leaves.iter().map(|u| u.id).collect();
    results.retain(|id, _| leaf_ids.contains(id));
    let mut quarantined: Vec<QuarantinedUnit> = quarantines
        .into_iter()
        .filter(|(id, _)| leaf_ids.contains(id))
        .map(|(unit_id, (attempts, reason))| QuarantinedUnit {
            unit_id,
            attempts,
            reason,
            label: leaves
                .iter()
                .find(|u| u.id == unit_id)
                .map(|u| u.unit.label())
                .unwrap_or_default(),
        })
        .collect();
    quarantined.sort_by_key(|q| q.unit_id);

    finalize(
        job,
        leaves,
        results,
        quarantined,
        0,
        true,
        0,
        RunTelemetry::default(),
    )
}

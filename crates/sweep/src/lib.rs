//! Checkpointed, crash-resilient sweeps over the bounded-exhaustive
//! enumeration space.
//!
//! The synthesis sweeps of Table 1 grow super-exponentially in the event
//! bound; at |E| ≥ 6 a run is hours long, and losing it to a crash, an OOM
//! kill or a cluster preemption means starting over. This crate makes the
//! sweep *restartable* without changing what it computes:
//!
//! * the enumeration is already partitioned into deterministic
//!   [`WorkUnit`](tm_synth::WorkUnit)s with stable cross-process ids;
//! * each completed unit's results (counts, banked Forbid candidates) are
//!   appended to a CRC-checked [`journal`](crate::journal) and fsync'd;
//! * on resume the journal is replayed, completed units are skipped, and
//!   the final suites are assembled from the union — **bit-identical** to
//!   an uninterrupted run, because units are deterministic and assembly
//!   sorts by canonical signature;
//! * a unit that panics or blows its deadline is retried with backoff and
//!   then quarantined: the sweep finishes degraded (and says so) instead of
//!   dying;
//! * units shard deterministically by id (`id % m == i`), and a
//!   [`supervisor`](crate::supervisor) can keep a fleet of shard processes
//!   alive, restarting crashed ones against their own checkpoints;
//! * with a shared [`lease`](crate::lease) directory, shards instead
//!   *claim* units from the whole frontier through atomic lease files —
//!   cross-shard work stealing: a dead shard's stale leases are reaped and
//!   its units finished by the survivors.
//!
//! Fault injection ([`FailPlan`]) is a first-class citizen: the crash/resume
//! guarantees above are only worth having if they are exercised, so the
//! runner can be told to panic, exit or stall after K units — the
//! crash-resume tests and CI smoke jobs are built on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod fnv;
pub mod journal;
pub mod lease;
pub mod report;
mod runner;
pub mod supervisor;

pub use codec::{decode_execution, encode_execution, CodecError};
pub use lease::{reap_stale, LeaseManager, LEASE_DIR};
pub use report::{report_json, write_report, Heartbeat, HEARTBEAT_FILE, REPORT_SCHEMA};
pub use runner::{
    merge_sharded, run_sweep, FailKind, FailPlan, QuarantinedUnit, SweepError, SweepJob, SweepMode,
    SweepOptions, SweepOutcome, SweepStatus, SweepTimings, UnitReport, INJECTED_EXIT_CODE,
};
pub use supervisor::{supervise, supervise_with, ShardRun, SupervisorOptions};

//! Claim-based cross-shard scheduling: a shared lease directory.
//!
//! Supervised shards no longer own a static `id % M` slice of the space.
//! Instead every shard sees the whole frontier and *leases* units from a
//! directory all shards share:
//!
//! ```text
//! <checkpoint>/leases/<unit_id:016x>.lease   — held: claimed, in flight
//! <checkpoint>/leases/<unit_id:016x>.done    — completed (or quarantined)
//! ```
//!
//! * **Claiming** is an atomic `O_EXCL` create of the `.lease` file — on a
//!   local filesystem exactly one shard wins; the loser moves on to the
//!   next unclaimed unit. The file body records the claimant (shard index,
//!   launch) for provenance and post-mortems.
//! * **Heartbeating**: while the owning worker makes progress (its
//!   enumeration stop-hook keeps ticking), the shard's monitor rewrites the
//!   lease (temp file + rename, the atomic-publish idiom) so its mtime
//!   stays fresh. A worker that stops polling — SIGKILLed process, hung
//!   unit — stops stamping, and the lease goes stale.
//! * **Reassignment**: the supervisor (or any caller of [`reap_stale`])
//!   deletes leases whose stamp is older than the staleness bound. The
//!   unit becomes claimable again and another shard steals it. If the
//!   original owner was merely slow and finishes anyway, both completions
//!   land in (different) journals; `merge_sharded` credits the unit once
//!   and validates the duplicates agree.
//! * **Completion** renames `.lease` → `.done` (atomic), which both
//!   publishes "don't bother" to the other shards and exempts the unit
//!   from reaping forever.
//!
//! Everything here is advisory for *efficiency*; correctness never depends
//! on the lease directory. The journals are the ground truth, units are
//! deterministic, and double execution is resolved at merge time.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Name of the shared lease directory under a supervised checkpoint root.
pub const LEASE_DIR: &str = "leases";

/// One shard's handle on the shared lease directory.
#[derive(Debug)]
pub struct LeaseManager {
    dir: PathBuf,
    shard_index: u32,
    launch: u32,
}

impl LeaseManager {
    /// Opens (creating if necessary) the lease directory at `dir` on behalf
    /// of shard `shard_index`, process launch `launch`.
    pub fn new(dir: impl Into<PathBuf>, shard_index: u32, launch: u32) -> io::Result<LeaseManager> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(LeaseManager {
            dir,
            shard_index,
            launch,
        })
    }

    fn lease_path(&self, unit_id: u64) -> PathBuf {
        self.dir.join(format!("{unit_id:016x}.lease"))
    }

    fn done_path(&self, unit_id: u64) -> PathBuf {
        self.dir.join(format!("{unit_id:016x}.done"))
    }

    /// Tries to claim `unit_id`. Returns `Ok(true)` when this shard now
    /// holds the lease; `Ok(false)` when the unit is already done or leased
    /// by someone else.
    pub fn try_claim(&self, unit_id: u64) -> io::Result<bool> {
        if self.done_path(unit_id).exists() {
            return Ok(false);
        }
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.lease_path(unit_id))
        {
            Ok(mut f) => {
                let _ = writeln!(f, "shard {} launch {}", self.shard_index, self.launch);
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Whether `unit_id` is marked done (by any shard).
    pub fn is_done(&self, unit_id: u64) -> bool {
        self.done_path(unit_id).exists()
    }

    /// Re-stamps a held lease so its mtime stays fresh: writes a sibling
    /// temp file and renames it over the lease. Errors are swallowed — a
    /// missed stamp at worst invites a redundant steal, which the merge
    /// resolves.
    pub fn refresh(&self, unit_id: u64) {
        let lease = self.lease_path(unit_id);
        let tmp = self
            .dir
            .join(format!(".{unit_id:016x}.{}.tmp", std::process::id()));
        let body = format!("shard {} launch {}\n", self.shard_index, self.launch);
        if fs::write(&tmp, body).is_ok() && fs::rename(&tmp, &lease).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Marks `unit_id` done and drops the lease: renames `.lease` → `.done`
    /// (atomic). If the lease was reaped from under us, publishes a fresh
    /// done marker instead (racing completions both succeed; the marker is
    /// idempotent). Errors are swallowed — the journal already holds the
    /// durable completion.
    pub fn complete(&self, unit_id: u64) {
        let lease = self.lease_path(unit_id);
        let done = self.done_path(unit_id);
        if fs::rename(&lease, &done).is_err() {
            let _ = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&done);
        }
    }

    /// Releases a held lease without completing it (budget expiry abandons
    /// the unit): deletes the `.lease` file so another shard — or this
    /// one's next launch — can claim it.
    pub fn release(&self, unit_id: u64) {
        let _ = fs::remove_file(self.lease_path(unit_id));
    }
}

/// Deletes every `.lease` file in `dir` whose mtime is older than
/// `stale_after`, returning how many were reaped. The supervisor calls this
/// from its poll loop; a missing or empty directory reaps nothing.
pub fn reap_stale(dir: &Path, stale_after: Duration) -> io::Result<usize> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let now = SystemTime::now();
    let mut reaped = 0;
    for entry in entries {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("lease") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let Ok(modified) = meta.modified() else {
            continue;
        };
        let stale = now
            .duration_since(modified)
            .map(|age| age >= stale_after)
            .unwrap_or(false);
        if stale && fs::remove_file(&path).is_ok() {
            reaped += 1;
        }
    }
    Ok(reaped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-sweep-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn claims_are_exclusive_until_completed() {
        let dir = scratch("exclusive");
        let a = LeaseManager::new(&dir, 0, 0).expect("a");
        let b = LeaseManager::new(&dir, 1, 0).expect("b");
        assert!(a.try_claim(7).expect("claim"));
        assert!(!b.try_claim(7).expect("conflict"), "double claim");
        a.complete(7);
        assert!(a.is_done(7) && b.is_done(7));
        assert!(!b.try_claim(7).expect("done"), "done units stay done");
        // Releasing (not completing) reopens the unit.
        assert!(b.try_claim(8).expect("claim"));
        b.release(8);
        assert!(a.try_claim(8).expect("reclaim"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_leases_are_reaped_and_reclaimable_but_done_survives() {
        let dir = scratch("reap");
        let a = LeaseManager::new(&dir, 0, 0).expect("a");
        assert!(a.try_claim(1).expect("claim"));
        assert!(a.try_claim(2).expect("claim"));
        a.complete(2);
        // Everything is fresh: nothing to reap.
        assert_eq!(reap_stale(&dir, Duration::from_secs(60)).expect("reap"), 0);
        // With a zero staleness bound the held lease is reaped; the done
        // marker is not.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(reap_stale(&dir, Duration::from_millis(1)).expect("reap"), 1);
        let b = LeaseManager::new(&dir, 1, 3).expect("b");
        assert!(b.try_claim(1).expect("steal"), "reaped lease is claimable");
        assert!(
            !b.try_claim(2).expect("done"),
            "done marker survives reaping"
        );
        // A refresh keeps a lease alive across the bound.
        b.refresh(1);
        assert_eq!(reap_stale(&dir, Duration::from_secs(60)).expect("reap"), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

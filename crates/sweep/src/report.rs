//! The machine-readable end-of-run report (`sweep.report.json`), live
//! heartbeat files, and the progress line built from them.
//!
//! The report is journal-adjacent truth: its `per_unit` array lists
//! exactly the units the journal records as completed (reused ones
//! included), so an operator can reconcile a report against its
//! checkpoint byte for byte. Heartbeats are tiny JSON files rewritten
//! atomically every few hundred milliseconds; the shard supervisor sums
//! them across checkpoint directories into one progress line.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use tm_obs::{Json, Obs};

use crate::runner::{SweepJob, SweepMode, SweepOutcome, SweepStatus};

/// Schema tag of `sweep.report.json`.
pub const REPORT_SCHEMA: &str = "tm-sweep-report/v1";

/// Name of the heartbeat file inside a checkpoint directory.
pub const HEARTBEAT_FILE: &str = "sweep.heartbeat.json";

/// Width of the sliding window (seconds) the progress ETA extrapolates
/// from. A run younger than two windows shows `--` instead of a number:
/// LPT dispatch front-loads the heaviest units, so early whole-run
/// averages are systematically wrong in both directions.
pub const ETA_WINDOW_SECS: f64 = 30.0;

/// How many units the report's `slowest_units` array keeps.
pub const SLOWEST_UNITS: usize = 10;

/// Builds the end-of-run report as a JSON document.
///
/// `obs` contributes the metrics-registry snapshot; pass a disabled handle
/// and the `metrics` member is simply the registry that handle carries
/// (counters run even when observability is off).
pub fn report_json(job: &SweepJob<'_>, outcome: &SweepOutcome, obs: &Obs) -> Json {
    let status = match outcome.status {
        SweepStatus::Complete => "complete",
        SweepStatus::Partial => "partial",
        SweepStatus::BudgetExhausted => "budget-exhausted",
    };
    let mode = match job.mode {
        SweepMode::Counts => "counts",
        SweepMode::Suites => "suites",
    };
    let opt_name = |m: Option<&dyn tm_models::MemoryModel>| match m {
        Some(m) => Json::Str(m.name().to_string()),
        None => Json::Null,
    };

    let timings = Json::obj(vec![
        ("setup_seconds", Json::Num(outcome.timings.setup_seconds)),
        ("run_seconds", Json::Num(outcome.timings.run_seconds)),
        (
            "assemble_seconds",
            Json::Num(outcome.timings.assemble_seconds),
        ),
        ("total_seconds", Json::Num(outcome.timings.total_seconds)),
    ]);

    let units = Json::obj(vec![
        ("total", Json::u64(outcome.total_units as u64)),
        ("completed", Json::u64(outcome.completed_units as u64)),
        ("reused", Json::u64(outcome.reused_units as u64)),
        ("fresh", Json::u64(outcome.fresh_units as u64)),
        ("pending", Json::u64(outcome.pending_units as u64)),
        ("quarantined", Json::u64(outcome.quarantined.len() as u64)),
        ("retried_attempts", Json::u64(outcome.retried_attempts)),
    ]);

    let executions = Json::obj(vec![
        ("visited", Json::u64(outcome.visited)),
        ("consistent", Json::u64(outcome.consistent)),
        ("drift", Json::u64(outcome.drift)),
        ("weighted_visited", Json::u64(outcome.weighted_visited)),
        (
            "weighted_consistent",
            Json::u64(outcome.weighted_consistent),
        ),
    ]);

    // A log2 histogram of fresh per-unit durations, in microseconds.
    let hist = tm_obs::Histogram::detached();
    for u in outcome.per_unit.iter().filter(|u| !u.reused) {
        hist.record((u.seconds * 1e6) as u64);
    }
    let unit_histogram = Json::obj(vec![
        ("unit", Json::Str("micros".to_string())),
        ("count", Json::u64(hist.count())),
        ("sum", Json::u64(hist.sum())),
        ("max", Json::u64(hist.max())),
        (
            "buckets",
            Json::Arr(
                hist.buckets()
                    .into_iter()
                    .map(|(lo, n)| Json::Arr(vec![Json::u64(lo), Json::u64(n)]))
                    .collect(),
            ),
        ),
    ]);

    let mut slowest: Vec<&crate::runner::UnitReport> =
        outcome.per_unit.iter().filter(|u| !u.reused).collect();
    slowest.sort_by(|a, b| {
        b.seconds
            .total_cmp(&a.seconds)
            .then(a.unit_id.cmp(&b.unit_id))
    });
    slowest.truncate(SLOWEST_UNITS);
    let slowest_units = Json::Arr(
        slowest
            .iter()
            .map(|u| {
                Json::obj(vec![
                    ("unit", Json::hex(u.unit_id)),
                    ("label", Json::Str(u.label.clone())),
                    ("events", Json::u64(u.events as u64)),
                    ("seconds", Json::Num(u.seconds)),
                    ("visited", Json::u64(u.visited)),
                ])
            })
            .collect(),
    );

    // Symmetry effectiveness over the units actually expanded this run
    // (replayed units carry no kill counters in the journal).
    let symmetry = if job.symmetry.is_reduced() && outcome.fresh_units > 0 {
        let p = &outcome.prune;
        let ratio = if p.representatives > 0 {
            p.weighted as f64 / p.representatives as f64
        } else {
            0.0
        };
        Json::obj(vec![
            ("fresh_representatives", Json::u64(p.representatives as u64)),
            ("fresh_weighted", Json::u64(p.weighted)),
            ("orbit_ratio", Json::Num(ratio)),
            ("shape_kills", Json::u64(p.shape_kills)),
            ("subtree_kills", Json::u64(p.subtree_kills)),
            ("edge_kills", Json::u64(p.edge_kills)),
        ])
    } else {
        Json::Null
    };

    let maintenance = match &outcome.checker {
        Some(t) => Json::obj(vec![
            ("maintained", Json::u64(t.stats.maintained)),
            ("rebased", Json::u64(t.stats.rebased)),
            ("dropped", Json::u64(t.stats.dropped)),
            ("invalidated", Json::u64(t.stats.invalidated)),
            ("resets", Json::u64(t.stats.resets)),
            ("fix_reevals", Json::u64(t.stats.fix_reevals)),
            ("axiom_queries", Json::u64(t.stats.axiom_queries)),
            ("axiom_cache_hits", Json::u64(t.stats.axiom_cache_hits)),
            ("early_exits", Json::u64(t.early_exits)),
        ]),
        None => Json::Null,
    };

    let per_unit = Json::Arr(
        outcome
            .per_unit
            .iter()
            .map(|u| {
                Json::obj(vec![
                    ("unit", Json::hex(u.unit_id)),
                    ("label", Json::Str(u.label.clone())),
                    ("events", Json::u64(u.events as u64)),
                    ("reused", Json::Bool(u.reused)),
                    ("seconds", Json::Num(u.seconds)),
                    ("attempts", Json::u64(u.attempts as u64)),
                    ("visited", Json::u64(u.visited)),
                    ("weighted_visited", Json::u64(u.weighted_visited)),
                ])
            })
            .collect(),
    );

    Json::obj(vec![
        ("schema", Json::Str(REPORT_SCHEMA.to_string())),
        ("fingerprint", Json::hex(job.fingerprint())),
        ("model", Json::Str(job.model.name().to_string())),
        ("baseline", opt_name(job.baseline)),
        ("reference", opt_name(job.reference)),
        ("mode", Json::Str(mode.to_string())),
        ("events", Json::u64(job.events as u64)),
        ("symmetry", Json::Str(job.symmetry.to_string())),
        ("status", Json::Str(status.to_string())),
        ("timings", timings),
        ("units", units),
        ("executions", executions),
        ("unit_seconds_histogram", unit_histogram),
        ("slowest_units", slowest_units),
        ("symmetry_effectiveness", symmetry),
        ("maintenance", maintenance),
        ("per_unit", per_unit),
        ("metrics", obs.registry().to_json()),
    ])
}

/// Renders and writes the report, atomically (temp file + rename).
pub fn write_report(
    path: &Path,
    job: &SweepJob<'_>,
    outcome: &SweepOutcome,
    obs: &Obs,
) -> io::Result<()> {
    let text = report_json(job, outcome, obs).render_pretty();
    write_atomic(path, text.as_bytes())
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = match path.file_name() {
        Some(name) => path.with_file_name(format!(".{}.tmp", name.to_string_lossy())),
        None => return Err(io::Error::other("report path has no file name")),
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// A point-in-time progress snapshot — what a running sweep writes next to
/// its journal and what the supervisor sums across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Heartbeat {
    /// Units completed (reused ones included).
    pub done: u64,
    /// Units in this run's slice of the space.
    pub total: u64,
    /// Units completed by this run (excludes reused).
    pub fresh: u64,
    /// Executions visited by fresh units (canonical representatives).
    pub visited: u64,
    /// Orbit-weighted visit count of fresh units.
    pub weighted: u64,
    /// Work-unit splits this run performed (pre-splits and cooperative
    /// splits of in-flight units).
    pub splits: u64,
    /// Child units handed back to the frontier by cooperative splits —
    /// in-process steals answered.
    pub steals: u64,
    /// Seconds since the run started.
    pub elapsed_seconds: f64,
}

impl Heartbeat {
    /// Serialises to the on-disk JSON shape.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str("tm-sweep-heartbeat/v1".to_string())),
            ("done", Json::u64(self.done)),
            ("total", Json::u64(self.total)),
            ("fresh", Json::u64(self.fresh)),
            ("visited", Json::u64(self.visited)),
            ("weighted", Json::u64(self.weighted)),
            ("splits", Json::u64(self.splits)),
            ("steals", Json::u64(self.steals)),
            ("elapsed_seconds", Json::Num(self.elapsed_seconds)),
        ])
    }

    /// Writes into `dir` atomically; errors are swallowed (a heartbeat is
    /// advisory — losing one must never fail a sweep).
    pub(crate) fn write(&self, dir: &Path) {
        let _ = write_atomic(
            &dir.join(HEARTBEAT_FILE),
            self.to_json().render_pretty().as_bytes(),
        );
    }

    /// Reads the heartbeat of a checkpoint directory, if one is there and
    /// parses.
    pub fn read(dir: &Path) -> Option<Heartbeat> {
        let text = std::fs::read_to_string(dir.join(HEARTBEAT_FILE)).ok()?;
        let json = Json::parse(&text).ok()?;
        Some(Heartbeat {
            done: json.get("done")?.as_u64()?,
            total: json.get("total")?.as_u64()?,
            fresh: json.get("fresh")?.as_u64()?,
            visited: json.get("visited")?.as_u64()?,
            weighted: json.get("weighted")?.as_u64()?,
            // Absent in heartbeats written before the scheduler existed.
            splits: json.get("splits").and_then(Json::as_u64).unwrap_or(0),
            steals: json.get("steals").and_then(Json::as_u64).unwrap_or(0),
            elapsed_seconds: json.get("elapsed_seconds")?.as_f64()?,
        })
    }

    /// Sums the heartbeats of several shard checkpoints (missing or
    /// unparsable ones contribute nothing; elapsed is the max). `None`
    /// when no directory has a heartbeat yet.
    ///
    /// For statically sharded sweeps, where each shard reports its own
    /// slice, so the totals sum. Claim-based (lease) shards all report the
    /// shared frontier — aggregate those with
    /// [`aggregate_shared`](Heartbeat::aggregate_shared) instead.
    pub fn aggregate(dirs: &[PathBuf]) -> Option<Heartbeat> {
        Self::aggregate_with(dirs, false)
    }

    /// Like [`aggregate`](Heartbeat::aggregate), but for claim-based
    /// shards: every shard's `total` is the whole shared frontier, so the
    /// aggregate takes the max rather than the sum (everything else still
    /// sums — shards only count their own completions).
    pub fn aggregate_shared(dirs: &[PathBuf]) -> Option<Heartbeat> {
        Self::aggregate_with(dirs, true)
    }

    fn aggregate_with(dirs: &[PathBuf], shared_total: bool) -> Option<Heartbeat> {
        let mut sum = Heartbeat::default();
        let mut seen = false;
        for dir in dirs {
            if let Some(hb) = Heartbeat::read(dir) {
                seen = true;
                sum.done += hb.done;
                sum.total = if shared_total {
                    sum.total.max(hb.total)
                } else {
                    sum.total + hb.total
                };
                sum.fresh += hb.fresh;
                sum.visited += hb.visited;
                sum.weighted += hb.weighted;
                sum.splits += hb.splits;
                sum.steals += hb.steals;
                sum.elapsed_seconds = sum.elapsed_seconds.max(hb.elapsed_seconds);
            }
        }
        seen.then_some(sum)
    }

    /// The live stderr progress line:
    /// `sweep: D/T units (P%) | R execs/s | ETA E`.
    ///
    /// `unit_rate` is a sliding-window completion rate in units/second
    /// (see [`tm_obs::RateWindow`] and [`ETA_WINDOW_SECS`]); `None` — the
    /// run is younger than two windows — renders the ETA as `--` rather
    /// than extrapolating from thin evidence.
    pub fn progress_line(&self, unit_rate: Option<f64>) -> String {
        let pct = if self.total > 0 {
            100.0 * self.done as f64 / self.total as f64
        } else {
            100.0
        };
        let rate = if self.elapsed_seconds > 0.0 {
            self.visited as f64 / self.elapsed_seconds
        } else {
            0.0
        };
        let eta = if self.done >= self.total {
            "0s".to_string()
        } else {
            match unit_rate {
                Some(r) if r > 0.0 => format_eta((self.total - self.done) as f64 / r),
                _ => "--".to_string(),
            }
        };
        format!(
            "sweep: {}/{} units ({:.0}%) | {} execs/s | ETA {}",
            self.done,
            self.total,
            pct,
            format_rate(rate),
            eta
        )
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.0}k", rate / 1e3)
    } else {
        format!("{:.0}", rate)
    }
}

fn format_eta(seconds: f64) -> String {
    let s = seconds.ceil() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeats_round_trip_and_aggregate() {
        let base = std::env::temp_dir().join("tm-sweep-heartbeat-test");
        let dirs = [base.join("shard-0"), base.join("shard-1")];
        for d in &dirs {
            std::fs::create_dir_all(d).unwrap();
        }
        Heartbeat {
            done: 3,
            total: 10,
            fresh: 2,
            visited: 100,
            weighted: 400,
            splits: 1,
            steals: 2,
            elapsed_seconds: 1.5,
        }
        .write(&dirs[0]);
        Heartbeat {
            done: 5,
            total: 10,
            fresh: 5,
            visited: 250,
            weighted: 900,
            splits: 0,
            steals: 0,
            elapsed_seconds: 2.0,
        }
        .write(&dirs[1]);
        let sum = Heartbeat::aggregate(dirs.as_ref()).expect("two heartbeats");
        assert_eq!(sum.done, 8);
        assert_eq!(sum.total, 20);
        assert_eq!(sum.visited, 350);
        assert_eq!(sum.splits, 1);
        assert_eq!(sum.steals, 2);
        assert_eq!(sum.elapsed_seconds, 2.0);
        // Claim-based shards share one frontier: total is a max, not a sum.
        let shared = Heartbeat::aggregate_shared(dirs.as_ref()).expect("two heartbeats");
        assert_eq!(shared.done, 8);
        assert_eq!(shared.total, 10);
        let line = sum.progress_line(Some(4.0));
        assert!(
            line.starts_with("sweep: 8/20 units (40%) | 175 execs/s | ETA 3s"),
            "unexpected line: {line}"
        );
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn progress_line_handles_the_empty_start() {
        let hb = Heartbeat {
            total: 504,
            ..Heartbeat::default()
        };
        assert_eq!(
            hb.progress_line(None),
            "sweep: 0/504 units (0%) | 0 execs/s | ETA --"
        );
    }

    /// A heartbeat file from before the scheduler (no splits/steals keys)
    /// still parses.
    #[test]
    fn pre_scheduler_heartbeats_still_read() {
        let dir = std::env::temp_dir().join("tm-sweep-heartbeat-old");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(HEARTBEAT_FILE),
            r#"{"schema":"tm-sweep-heartbeat/v1","done":2,"total":9,"fresh":2,
               "visited":50,"weighted":50,"elapsed_seconds":0.5}"#,
        )
        .unwrap();
        let hb = Heartbeat::read(&dir).expect("parses");
        assert_eq!((hb.done, hb.total, hb.splits, hb.steals), (2, 9, 0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }
}

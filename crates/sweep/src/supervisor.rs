//! A tiny shard supervisor: spawns one child process per shard, watches
//! them, and restarts crashed shards (with backoff) against their own
//! checkpoints — the resume machinery does the rest.
//!
//! The supervisor is policy-free about *what* the children run: the caller
//! provides a `Command` factory keyed by shard index and launch count, so
//! tests can inject a fail plan into the first launch only and the CLI can
//! rebuild its own invocation with `--shard i/m --resume`.

use std::io;
use std::process::{Child, Command};
use std::time::Duration;

/// Exit codes the supervisor treats as terminal (the child finished its
/// shard, possibly degraded) rather than crashed.
///
/// 0 = complete; 3 = partial (quarantined units — deterministic failures
/// that a restart would only replay).
const TERMINAL_CODES: [i32; 2] = [0, 3];

/// Knobs of a supervised sharded run.
pub struct SupervisorOptions {
    /// Number of shards (and children).
    pub shards: u32,
    /// Restarts allowed per shard before giving up on it.
    pub max_restarts: u32,
    /// Base pause before a restart, doubled per restart of the same shard.
    pub backoff: Duration,
}

impl SupervisorOptions {
    /// Defaults: `shards` children, 3 restarts each, 50ms base backoff.
    pub fn new(shards: u32) -> SupervisorOptions {
        SupervisorOptions {
            shards,
            max_restarts: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// What happened to one shard across its launches.
#[derive(Clone, Debug)]
pub struct ShardRun {
    /// Shard index in `0..shards`.
    pub index: u32,
    /// Times the shard was launched (1 = no restart needed).
    pub launches: u32,
    /// The final exit code (`None` if the child died to a signal on its
    /// last allowed launch).
    pub exit_code: Option<i32>,
}

impl ShardRun {
    /// True if the shard eventually finished (exit 0 or 3).
    pub fn finished(&self) -> bool {
        self.exit_code.is_some_and(|c| TERMINAL_CODES.contains(&c))
    }
}

struct ShardState {
    index: u32,
    child: Option<Child>,
    launches: u32,
    last_code: Option<i32>,
    restart_at: Option<std::time::Instant>,
}

/// Spawns `opts.shards` children and keeps them alive until each either
/// finishes (exit 0 or 3) or exhausts its restarts. `command_for(i, launch)`
/// builds the command for shard `i`'s `launch`-th start (0-based), which
/// must point the child at a per-shard checkpoint and pass `--resume` so a
/// restart continues rather than restarts from scratch.
///
/// Children run concurrently; the supervisor polls them every few
/// milliseconds (no signal handling — portable and good enough for
/// sweep-length processes).
pub fn supervise(
    opts: &SupervisorOptions,
    command_for: impl FnMut(u32, u32) -> Command,
) -> io::Result<Vec<ShardRun>> {
    supervise_with(opts, command_for, || {})
}

/// [`supervise`] with a callback invoked once per poll cycle (every ~10ms)
/// while children are live, and once more after the last child exits.
///
/// This is the hook the CLI hangs live progress on: the children write
/// heartbeat files into their checkpoint directories as they sweep, and
/// the callback aggregates them (see
/// [`Heartbeat::aggregate`](crate::report::Heartbeat::aggregate)) into one
/// stderr line. The callback runs on the supervising thread; keep it
/// cheap and rate-limit any output it produces.
pub fn supervise_with(
    opts: &SupervisorOptions,
    mut command_for: impl FnMut(u32, u32) -> Command,
    mut on_poll: impl FnMut(),
) -> io::Result<Vec<ShardRun>> {
    let mut shards: Vec<ShardState> = (0..opts.shards)
        .map(|index| ShardState {
            index,
            child: None,
            launches: 0,
            last_code: None,
            restart_at: None,
        })
        .collect();
    for shard in &mut shards {
        shard.child = Some(command_for(shard.index, 0).spawn()?);
        shard.launches = 1;
    }

    loop {
        let mut live = false;
        for shard in &mut shards {
            if let Some(child) = &mut shard.child {
                match child.try_wait()? {
                    None => live = true,
                    Some(status) => {
                        shard.child = None;
                        shard.last_code = status.code();
                        let done = status.code().is_some_and(|c| TERMINAL_CODES.contains(&c));
                        let restarts_used = shard.launches - 1;
                        if !done && restarts_used < opts.max_restarts {
                            let exp = restarts_used.min(8);
                            shard.restart_at = Some(
                                std::time::Instant::now() + opts.backoff.saturating_mul(1 << exp),
                            );
                            live = true;
                        }
                    }
                }
            } else if let Some(at) = shard.restart_at {
                live = true;
                if std::time::Instant::now() >= at {
                    shard.restart_at = None;
                    shard.child = Some(command_for(shard.index, shard.launches).spawn()?);
                    shard.launches += 1;
                }
            }
        }
        on_poll();
        if !live {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    Ok(shards
        .into_iter()
        .map(|s| ShardRun {
            index: s.index,
            launches: s.launches,
            exit_code: s.last_code,
        })
        .collect())
}

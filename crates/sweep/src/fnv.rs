//! FNV-1a 64-bit, duplicated from `tm-synth`'s private helper: a stable,
//! seed-free hash for cross-process identifiers (std's hashers are
//! process-seeded by design). The constants are pinned by tests there; here
//! it only feeds the sweep-job fingerprint.

pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    pub(crate) fn byte(&mut self, b: u8) -> &mut Fnv1a {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        self
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) -> &mut Fnv1a {
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    pub(crate) fn u64(&mut self, v: u64) -> &mut Fnv1a {
        self.bytes(&v.to_le_bytes())
    }

    pub(crate) fn usize(&mut self, v: usize) -> &mut Fnv1a {
        self.u64(v as u64)
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

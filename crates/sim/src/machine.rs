//! An operational weak-memory machine with best-effort hardware
//! transactional memory.
//!
//! This is the substitute for the silicon the paper runs its conformance
//! suites on (see DESIGN.md). One machine configuration models each
//! architecture:
//!
//! * **x86** — in-order execution with per-thread FIFO store buffers and
//!   store→load forwarding (TSO); `MFENCE` and `LOCK`'d RMWs drain the
//!   buffer;
//! * **ARMv8** — out-of-order execution constrained by dependencies,
//!   barriers and acquire/release one-way fences, writing directly to a
//!   single shared memory (multicopy-atomic);
//! * **Power** — out-of-order execution *plus* non-multicopy-atomic write
//!   propagation: a store becomes visible to other threads one at a time,
//!   in coherence order, under scheduler control.
//!
//! The HTM layer buffers transactional writes, tracks read/write sets,
//! aborts on conflict with any access that becomes visible to the thread
//! (strong isolation), publishes the write set atomically to every thread
//! at commit (multicopy-atomic commit), and acts as a full barrier at both
//! boundaries.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::rng::SimRng;

use tm_litmus::{AccessMode, DepKind, FenceInstr, Instr, LitmusTest, Reg, Thread};

/// The architecture a [`Machine`] simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SimArch {
    /// Total store order with store buffers (in-order execution).
    X86,
    /// Relaxed, multicopy-atomic, out-of-order execution.
    Armv8,
    /// Relaxed, non-multicopy-atomic (per-thread write propagation).
    Power,
}

impl SimArch {
    fn reorders(self) -> bool {
        !matches!(self, SimArch::X86)
    }

    fn store_buffer(self) -> bool {
        matches!(self, SimArch::X86)
    }

    fn non_mca(self) -> bool {
        matches!(self, SimArch::Power)
    }
}

/// The final state of one simulated run.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FinalState {
    /// Final value of every location.
    pub memory: Vec<(String, u64)>,
    /// Final value of every named register, as `(thread, register, value)`.
    pub registers: Vec<(usize, Reg, u64)>,
    /// Which threads' transactions committed (true) or aborted (false);
    /// threads without a transaction are absent.
    pub txn_committed: Vec<(usize, bool)>,
}

/// A coherence-ordered write to one location.
#[derive(Clone, Debug)]
struct WriteRecord {
    value: u64,
    /// Which threads this write has propagated to (always includes the
    /// writer). Only meaningful on non-multicopy-atomic machines.
    visible_to: HashSet<usize>,
}

#[derive(Clone, Debug, Default)]
struct TxnState {
    active: bool,
    aborted: bool,
    committed: bool,
    had_txn: bool,
    read_set: HashSet<String>,
    write_set: BTreeMap<String, u64>,
    saved_regs: HashMap<Reg, u64>,
}

#[derive(Clone, Debug)]
struct ThreadState {
    instrs: Vec<Instr>,
    done: Vec<bool>,
    regs: HashMap<Reg, u64>,
    store_buffer: Vec<(String, u64)>,
    txn: TxnState,
    /// Locks currently held by this thread (lock-elision pseudo-calls).
    held_locks: HashSet<String>,
}

/// One operational machine instance executing a litmus test.
#[derive(Clone, Debug)]
pub struct Machine {
    arch: SimArch,
    threads: Vec<ThreadState>,
    /// Per-location coherence history; the last *globally propagated* write
    /// is the final value.
    history: BTreeMap<String, Vec<WriteRecord>>,
    locks: HashMap<String, Option<usize>>,
    thread_count: usize,
}

/// A schedulable step.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Action {
    /// Execute instruction `instr` of thread `thread`.
    Execute { thread: usize, instr: usize },
    /// Flush the oldest store-buffer entry of `thread` to memory.
    Flush { thread: usize },
    /// Propagate write number `index` on `loc` to thread `to` (Power only).
    Propagate {
        loc: String,
        index: usize,
        to: usize,
    },
}

impl Machine {
    /// Creates a machine ready to run `test` on `arch`.
    pub fn new(arch: SimArch, test: &LitmusTest) -> Machine {
        let mut history: BTreeMap<String, Vec<WriteRecord>> = BTreeMap::new();
        for loc in test.locations() {
            let init = test
                .init
                .iter()
                .find(|(l, _)| *l == loc)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            history.insert(
                loc,
                vec![WriteRecord {
                    value: init,
                    visible_to: (0..test.threads.len()).collect(),
                }],
            );
        }
        let threads = test
            .threads
            .iter()
            .map(|t: &Thread| ThreadState {
                instrs: t.instrs.clone(),
                done: vec![false; t.instrs.len()],
                regs: HashMap::new(),
                store_buffer: Vec::new(),
                txn: TxnState::default(),
                held_locks: HashSet::new(),
            })
            .collect::<Vec<_>>();
        let thread_count = test.threads.len();
        Machine {
            arch,
            threads,
            history,
            locks: HashMap::new(),
            thread_count,
        }
    }

    /// Runs the whole program under a random schedule drawn from `rng`,
    /// returning the final state.
    ///
    /// Each run draws, per destination thread, a random *propagation
    /// eagerness*: how readily pending writes become visible to that thread.
    /// Runs where one observer thread is eager and another is lazy are what
    /// expose the non-multicopy-atomic behaviours (WRC, IRIW) on the Power
    /// machine — the simulation analogue of the `litmus` affinity parameter
    /// the paper uses to coax IRIW out of an 80-core POWER8.
    pub fn run(mut self, rng: &mut SimRng) -> FinalState {
        let eagerness: Vec<f64> = (0..self.thread_count)
            .map(|_| rng.gen_range_f64(0.02, 1.0))
            .collect();
        let speed: Vec<f64> = (0..self.thread_count)
            .map(|_| rng.gen_range_f64(0.02, 1.0))
            .collect();
        loop {
            let actions = self.enabled_actions();
            if actions.is_empty() {
                break;
            }
            let weights: Vec<f64> = actions
                .iter()
                .map(|a| match a {
                    Action::Propagate { to, .. } => eagerness[*to],
                    Action::Execute { thread, .. } => speed[*thread],
                    Action::Flush { .. } => 1.0,
                })
                .collect();
            let total: f64 = weights.iter().sum();
            let mut pick = rng.gen_range_f64(0.0, total);
            let mut chosen = actions.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            let action = actions[chosen].clone();
            self.step(&action, rng);
        }
        self.final_state()
    }

    fn final_state(mut self) -> FinalState {
        // Drain any leftover store buffers so the final memory is coherent.
        for t in 0..self.thread_count {
            while !self.threads[t].store_buffer.is_empty() {
                self.flush_one(t);
            }
        }
        let mut memory: Vec<(String, u64)> = self
            .history
            .iter()
            .map(|(loc, hist)| (loc.clone(), hist.last().map(|w| w.value).unwrap_or(0)))
            .collect();
        memory.sort();
        let mut registers = Vec::new();
        for (t, thread) in self.threads.iter().enumerate() {
            let mut regs: Vec<(Reg, u64)> = thread.regs.iter().map(|(r, v)| (*r, *v)).collect();
            regs.sort();
            for (r, v) in regs {
                registers.push((t, r, v));
            }
        }
        let mut txn_committed = Vec::new();
        for (t, thread) in self.threads.iter().enumerate() {
            if thread.txn.had_txn {
                txn_committed.push((t, thread.txn.committed));
            }
        }
        FinalState {
            memory,
            registers,
            txn_committed,
        }
    }

    // ---- scheduling -------------------------------------------------------

    fn enabled_actions(&self) -> Vec<Action> {
        let mut actions = Vec::new();
        for (t, thread) in self.threads.iter().enumerate() {
            for i in 0..thread.instrs.len() {
                if !thread.done[i] && self.can_execute(t, i) {
                    actions.push(Action::Execute {
                        thread: t,
                        instr: i,
                    });
                    if !self.arch.reorders() {
                        // In-order: only the first not-done instruction is a
                        // candidate.
                        break;
                    }
                }
                if !thread.done[i] && !self.arch.reorders() {
                    break;
                }
            }
            if !thread.store_buffer.is_empty() {
                actions.push(Action::Flush { thread: t });
            }
        }
        if self.arch.non_mca() {
            for (loc, hist) in &self.history {
                for (i, w) in hist.iter().enumerate() {
                    for t in 0..self.thread_count {
                        if !w.visible_to.contains(&t) && self.propagation_in_order(loc, i, t) {
                            actions.push(Action::Propagate {
                                loc: loc.clone(),
                                index: i,
                                to: t,
                            });
                        }
                    }
                }
            }
        }
        actions
    }

    /// Writes propagate to each thread in coherence order.
    fn propagation_in_order(&self, loc: &str, index: usize, to: usize) -> bool {
        let hist = &self.history[loc];
        hist[..index].iter().all(|w| w.visible_to.contains(&to))
    }

    /// Decides whether instruction `i` of thread `t` may execute now, given
    /// the architecture's intra-thread ordering rules.
    fn can_execute(&self, t: usize, i: usize) -> bool {
        let thread = &self.threads[t];
        let instr = &thread.instrs[i];

        // An aborted transaction skips forward to its txend.
        if thread.txn.active && thread.txn.aborted && !matches!(instr, Instr::TxEnd) {
            // Still has to respect in-order skipping: handled in execute.
        }

        if !self.arch.reorders() {
            // In-order machines execute the first unfinished instruction.
            let first_undone = thread.done.iter().position(|d| !d);
            if first_undone != Some(i) {
                return false;
            }
            // MFENCE and RMWs wait for the store buffer to drain.
            return match instr {
                Instr::Fence(FenceInstr::MFence) | Instr::Rmw { .. } => {
                    thread.store_buffer.is_empty()
                }
                _ => true,
            };
        }

        // Out-of-order machines: check ordering constraints against every
        // earlier, not-yet-executed instruction.
        for j in 0..i {
            if thread.done[j] {
                continue;
            }
            if self.must_order(t, j, i) {
                return false;
            }
        }
        true
    }

    /// True if instruction `earlier` must complete before `later` may start,
    /// on an out-of-order machine.
    fn must_order(&self, t: usize, earlier: usize, later: usize) -> bool {
        let thread = &self.threads[t];
        let e = &thread.instrs[earlier];
        let l = &thread.instrs[later];

        // Transactions execute as an in-order block with fences at the
        // boundaries.
        if e.is_txn_boundary() || l.is_txn_boundary() {
            return true;
        }
        let e_in_txn = self.in_txn_region(t, earlier);
        let l_in_txn = self.in_txn_region(t, later);
        if e_in_txn || l_in_txn {
            return true;
        }

        // Same-location accesses stay in order (per-thread coherence).
        if let (Some(a), Some(b)) = (e.loc(), l.loc()) {
            if a == b {
                return true;
            }
        }

        // Dependencies: the consumer waits for the producing load.
        let dep_reg = match l {
            Instr::Load { dep: Some(d), .. } | Instr::Store { dep: Some(d), .. } => Some(d.reg),
            _ => None,
        };
        if let Some(reg) = dep_reg {
            if let Instr::Load { reg: r, .. } | Instr::Rmw { reg: r, .. } = e {
                if *r == reg {
                    return true;
                }
            }
        }

        // Barriers.
        match e {
            Instr::Fence(FenceInstr::Dmb)
            | Instr::Fence(FenceInstr::Sync)
            | Instr::Fence(FenceInstr::MFence)
            | Instr::Fence(FenceInstr::FenceSc) => return true,
            Instr::Fence(FenceInstr::Lwsync) | Instr::Fence(FenceInstr::DmbLd)
                // Orders everything except store→load.
                if (!matches!(l, Instr::Load { .. }) || !self.stores_before(t, earlier)) => {
                    return true;
                }
            Instr::Fence(FenceInstr::DmbSt) => {
                if matches!(l, Instr::Store { .. } | Instr::Rmw { .. }) {
                    return true;
                }
            }
            _ => {}
        }
        if matches!(l, Instr::Fence(_)) {
            return true;
        }

        // Acquire loads are one-way barriers: nothing later may overtake
        // them. Release stores wait for everything earlier.
        if let Instr::Load { mode, .. } | Instr::Rmw { mode, .. } = e {
            if matches!(mode, AccessMode::Acquire | AccessMode::SeqCst) {
                return true;
            }
        }
        if let Instr::Store { mode, .. } | Instr::Rmw { mode, .. } = l {
            if matches!(mode, AccessMode::Release | AccessMode::SeqCst) {
                return true;
            }
        }

        // Control dependencies to stores: a store after a conditional branch
        // on a pending load must wait (approximated via the dep field above).
        // Loads may speculate past control dependencies — that is exactly the
        // relaxation of Example 1.1.
        let _ = DepKind::Ctrl;

        // Lock pseudo-calls serialise the whole thread.
        if matches!(e, Instr::Lock { .. } | Instr::Unlock { .. })
            || matches!(l, Instr::Lock { .. } | Instr::Unlock { .. })
        {
            return true;
        }
        false
    }

    fn stores_before(&self, t: usize, fence_index: usize) -> bool {
        self.threads[t].instrs[..fence_index]
            .iter()
            .any(|i| matches!(i, Instr::Store { .. } | Instr::Rmw { .. }))
    }

    /// True if instruction `i` sits between a `TxBegin` and its `TxEnd`.
    fn in_txn_region(&self, t: usize, i: usize) -> bool {
        let instrs = &self.threads[t].instrs;
        let mut depth = 0i32;
        for (j, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::TxBegin => depth += 1,
                Instr::TxEnd => depth -= 1,
                _ => {}
            }
            if j == i {
                return depth > 0 && !instr.is_txn_boundary();
            }
        }
        false
    }

    // ---- execution --------------------------------------------------------

    fn step(&mut self, action: &Action, rng: &mut SimRng) {
        match action {
            Action::Flush { thread } => self.flush_one(*thread),
            Action::Propagate { loc, index, to } => {
                self.history
                    .get_mut(loc)
                    .expect("location exists")
                    .get_mut(*index)
                    .expect("write exists")
                    .visible_to
                    .insert(*to);
                self.notify_conflict(*to, loc);
            }
            Action::Execute { thread, instr } => self.execute(*thread, *instr, rng),
        }
    }

    fn flush_one(&mut self, t: usize) {
        if self.threads[t].store_buffer.is_empty() {
            return;
        }
        let (loc, value) = self.threads[t].store_buffer.remove(0);
        self.commit_write(t, &loc, value, true);
    }

    /// Appends a write to the coherence history. `global` publishes it to
    /// every thread immediately (x86 flush, ARMv8 store, transaction commit);
    /// otherwise it is visible to the writer only and must propagate.
    fn commit_write(&mut self, writer: usize, loc: &str, value: u64, global: bool) {
        let visible_to: HashSet<usize> = if global || !self.arch.non_mca() {
            (0..self.thread_count).collect()
        } else {
            [writer].into_iter().collect()
        };
        let visible_now: Vec<usize> = visible_to.iter().copied().collect();
        self.history
            .entry(loc.to_string())
            .or_default()
            .push(WriteRecord { value, visible_to });
        for t in visible_now {
            if t != writer {
                self.notify_conflict(t, loc);
            }
        }
    }

    /// Aborts thread `t`'s transaction if a newly visible write conflicts
    /// with its read or write set (strong isolation: any access counts).
    fn notify_conflict(&mut self, t: usize, loc: &str) {
        let txn = &mut self.threads[t].txn;
        if txn.active
            && !txn.aborted
            && (txn.read_set.contains(loc) || txn.write_set.contains_key(loc))
        {
            txn.aborted = true;
        }
    }

    fn read_memory(&self, t: usize, loc: &str) -> u64 {
        let hist = &self.history[loc];
        if self.arch.non_mca() {
            hist.iter()
                .rev()
                .find(|w| w.visible_to.contains(&t))
                .map(|w| w.value)
                .unwrap_or(0)
        } else {
            hist.last().map(|w| w.value).unwrap_or(0)
        }
    }

    fn execute(&mut self, t: usize, i: usize, _rng: &mut SimRng) {
        let instr = self.threads[t].instrs[i].clone();
        self.threads[t].done[i] = true;

        // Inside an aborted transaction, everything up to TxEnd is a no-op.
        if self.threads[t].txn.active
            && self.threads[t].txn.aborted
            && !matches!(instr, Instr::TxEnd)
        {
            return;
        }

        match instr {
            Instr::Load { reg, loc, .. } => {
                let value = self.load_value(t, &loc);
                if self.threads[t].txn.active {
                    self.threads[t].txn.read_set.insert(loc);
                }
                self.threads[t].regs.insert(reg, value);
            }
            Instr::Store { loc, value, .. } => {
                if self.threads[t].txn.active {
                    self.threads[t].txn.write_set.insert(loc, value);
                } else if self.arch.store_buffer() {
                    self.threads[t].store_buffer.push((loc, value));
                } else {
                    self.commit_write(t, &loc, value, !self.arch.non_mca());
                }
            }
            Instr::Rmw {
                reg, loc, value, ..
            } => {
                // RMWs are atomic against the coherence history: read the
                // latest write visible anywhere and append globally.
                let current = self.history[&loc].last().map(|w| w.value).unwrap_or(0);
                self.threads[t].regs.insert(reg, current);
                if self.threads[t].txn.active {
                    self.threads[t].txn.read_set.insert(loc.clone());
                    self.threads[t].txn.write_set.insert(loc, value);
                } else {
                    self.commit_write(t, &loc, value, true);
                }
            }
            Instr::Fence(FenceInstr::Sync) => {
                // sync is cumulative: writes this thread has observed
                // propagate to everyone.
                self.propagate_visible_writes(t);
            }
            Instr::Fence(_) => {}
            Instr::TxBegin => {
                // A transaction boundary has the ordering semantics of a
                // LOCK-prefixed instruction (§5.2): drain the store buffer
                // and propagate observed writes cumulatively.
                while !self.threads[t].store_buffer.is_empty() {
                    self.flush_one(t);
                }
                self.propagate_visible_writes(t);
                let saved = self.threads[t].regs.clone();
                let txn = &mut self.threads[t].txn;
                txn.active = true;
                txn.aborted = false;
                txn.had_txn = true;
                txn.read_set.clear();
                txn.write_set.clear();
                txn.saved_regs = saved.into_iter().collect();
            }
            Instr::TxEnd => {
                // Commit is also a full fence on every architecture we
                // model; on Power it is cumulative (the integrated barrier
                // behind `tprop1`): writes the transaction read from must be
                // visible everywhere before its own writes publish.
                while !self.threads[t].store_buffer.is_empty() {
                    self.flush_one(t);
                }
                self.propagate_visible_writes(t);
                let aborted = self.threads[t].txn.aborted;
                if aborted {
                    // Roll back registers; the fail handler zeroes ok.
                    let saved = self.threads[t].txn.saved_regs.clone();
                    self.threads[t].regs = saved.into_iter().collect();
                    self.threads[t].txn.committed = false;
                } else {
                    // Commit: publish the write set atomically to everyone.
                    let writes: Vec<(String, u64)> = self.threads[t]
                        .txn
                        .write_set
                        .iter()
                        .map(|(l, v)| (l.clone(), *v))
                        .collect();
                    for (loc, value) in writes {
                        self.commit_write(t, &loc, value, true);
                    }
                    self.threads[t].txn.committed = true;
                }
                let txn = &mut self.threads[t].txn;
                txn.active = false;
                txn.read_set.clear();
                txn.write_set.clear();
            }
            Instr::TxAbort => {
                self.threads[t].txn.aborted = true;
            }
            Instr::Lock { mutex, .. } => {
                // The pseudo-call lock() stands for a *correct* lock
                // implementation, so it synchronises fully: drain the store
                // buffer, then acquire if free (retry otherwise).
                while !self.threads[t].store_buffer.is_empty() {
                    self.flush_one(t);
                }
                let owner = self.locks.entry(mutex.clone()).or_insert(None);
                if owner.is_none() {
                    *owner = Some(t);
                    self.threads[t].held_locks.insert(mutex);
                } else {
                    // Busy: re-enable this instruction so the thread retries.
                    self.threads[t].done[i] = false;
                }
            }
            Instr::Unlock { mutex, .. } => {
                // A correct unlock publishes the critical region's writes
                // before releasing the mutex: drain the store buffer and
                // force outstanding writes to propagate everywhere (the
                // cumulative barrier inside a real unlock).
                while !self.threads[t].store_buffer.is_empty() {
                    self.flush_one(t);
                }
                let all: HashSet<usize> = (0..self.thread_count).collect();
                let newly_visible: Vec<String> = self.history.keys().cloned().collect();
                for hist in self.history.values_mut() {
                    for w in hist.iter_mut() {
                        w.visible_to = all.clone();
                    }
                }
                for loc in newly_visible {
                    for other in 0..self.thread_count {
                        if other != t {
                            self.notify_conflict(other, &loc);
                        }
                    }
                }
                if self.threads[t].held_locks.remove(&mutex) {
                    self.locks.insert(mutex, None);
                }
            }
        }
    }

    /// Cumulative barrier on the non-multicopy-atomic machine: every write
    /// already visible to `t` becomes visible to every thread. This is the
    /// "group A" propagation of a Power `sync`, and — crucially for the
    /// model's `tprop1` axiom — of a transaction boundary: writes a
    /// transaction observed must propagate everywhere before (or with) the
    /// transaction's own writes. On multicopy-atomic machines it is a no-op.
    fn propagate_visible_writes(&mut self, t: usize) {
        if !self.arch.non_mca() {
            return;
        }
        let all: HashSet<usize> = (0..self.thread_count).collect();
        // One entry per location, no matter how many of its writes promote.
        let mut newly_visible: Vec<String> = Vec::new();
        for (loc, hist) in self.history.iter_mut() {
            let mut promoted = false;
            for w in hist.iter_mut() {
                if w.visible_to.contains(&t) && w.visible_to.len() < self.thread_count {
                    w.visible_to.clone_from(&all);
                    promoted = true;
                }
            }
            if promoted {
                newly_visible.push(loc.clone());
            }
        }
        for loc in newly_visible {
            for other in 0..self.thread_count {
                if other != t {
                    self.notify_conflict(other, &loc);
                }
            }
        }
    }

    fn load_value(&self, t: usize, loc: &str) -> u64 {
        // Transactional reads see the transaction's own writes first.
        if self.threads[t].txn.active {
            if let Some(v) = self.threads[t].txn.write_set.get(loc) {
                return *v;
            }
        }
        // Store-buffer forwarding.
        if let Some((_, v)) = self.threads[t]
            .store_buffer
            .iter()
            .rev()
            .find(|(l, _)| l == loc)
        {
            return *v;
        }
        self.read_memory(t, loc)
    }
}

/// Runs `test` `runs` times on `arch` with schedules drawn from `seed`,
/// collecting the distinct final states.
pub fn explore(arch: SimArch, test: &LitmusTest, runs: usize, seed: u64) -> Vec<FinalState> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut seen: Vec<FinalState> = Vec::new();
    for _ in 0..runs {
        let machine = Machine::new(arch, test);
        let mut run_rng = SimRng::seed_from_u64(rng.next_u64());
        let state = machine.run(&mut run_rng);
        if !seen.contains(&state) {
            seen.push(state);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_litmus::{from_execution, Cond};

    fn observes(arch: SimArch, test: &LitmusTest, runs: usize) -> bool {
        crate::runner::run_test(arch, test, runs, 12345).observed
    }

    #[test]
    fn sb_is_observable_on_every_architecture() {
        let test = from_execution(&tm_exec::catalog::sb(), "sb");
        assert!(observes(SimArch::X86, &test, 400));
        assert!(observes(SimArch::Armv8, &test, 400));
        assert!(observes(SimArch::Power, &test, 400));
    }

    #[test]
    fn sb_with_mfence_is_not_observable_on_x86() {
        let test = from_execution(&tm_exec::catalog::sb_mfence(), "sb+mfence");
        assert!(!observes(SimArch::X86, &test, 600));
    }

    #[test]
    fn mp_is_observable_on_relaxed_machines_only() {
        let test = from_execution(&tm_exec::catalog::mp(), "mp");
        assert!(!observes(SimArch::X86, &test, 600));
        assert!(observes(SimArch::Armv8, &test, 600));
        assert!(observes(SimArch::Power, &test, 600));
    }

    #[test]
    fn transactional_sb_never_exhibits_the_relaxation() {
        let test = from_execution(&tm_exec::catalog::sb_txn(), "sb+txn");
        for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
            assert!(
                !observes(arch, &test, 600),
                "{arch:?} exposed SB inside txns"
            );
        }
    }

    #[test]
    fn wrc_is_observable_only_on_power() {
        let test = from_execution(&tm_exec::catalog::wrc(), "wrc");
        assert!(!observes(SimArch::X86, &test, 600));
        assert!(!observes(SimArch::Armv8, &test, 600));
        // The non-multicopy-atomic outcome needs an unlucky propagation
        // schedule, so it is rare — as on real POWER hardware, where the
        // paper needs 10M runs and an affinity trick to see IRIW.
        assert!(observes(SimArch::Power, &test, 8000));
    }

    #[test]
    fn power_transactional_write_propagation_is_multicopy_atomic() {
        // Execution (2) of §5.2: with the writer transactional the WRC
        // behaviour must disappear.
        let test = from_execution(&tm_exec::catalog::power_wrc_tprop2(), "wrc+txn");
        assert!(!observes(SimArch::Power, &test, 1500));
    }

    #[test]
    fn conflicting_transactions_serialise() {
        let test = from_execution(&tm_exec::catalog::lb_txn(), "lb+txn");
        for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
            assert!(!observes(arch, &test, 600));
        }
    }

    #[test]
    fn fig2_strong_isolation_holds_operationally() {
        // The external store lands between the transactional store and load
        // only if isolation is broken; the simulator must never show it.
        let test = from_execution(&tm_exec::catalog::fig2(), "fig2");
        for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
            assert!(!observes(arch, &test, 600));
        }
    }

    #[test]
    fn aborted_transactions_report_not_committed() {
        // A transaction that explicitly aborts never satisfies ok = 1.
        let mut test = from_execution(&tm_exec::catalog::fig2(), "fig2-abort");
        // Insert an explicit abort into the transaction.
        let pos = test.threads[0]
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::TxEnd))
            .unwrap();
        test.threads[0].instrs.insert(pos, Instr::TxAbort);
        test.post = tm_litmus::Postcondition {
            conjuncts: vec![Cond::TxnCommitted { thread: 0 }],
        };
        for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
            assert!(!observes(arch, &test, 200));
        }
    }

    #[test]
    fn final_states_are_deterministic_per_seed() {
        let test = from_execution(&tm_exec::catalog::sb(), "sb");
        let a = explore(SimArch::Armv8, &test, 50, 7);
        let b = explore(SimArch::Armv8, &test, 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn lock_pseudo_calls_provide_mutual_exclusion() {
        // Two locked critical regions both incrementing x: the abstract
        // machine (which honours lock()) must serialise them.
        let test = tm_litmus::catalog::example_1_1_abstract();
        for arch in [SimArch::X86, SimArch::Armv8, SimArch::Power] {
            assert!(
                !observes(arch, &test, 600),
                "{arch:?} violated mutual exclusion for lock() pseudo-calls"
            );
        }
    }
}

//! Running litmus tests on the operational simulators and checking their
//! postconditions — the stand-in for the paper's `litmus` hardware runs.

use crate::rng::SimRng;

use tm_litmus::{Cond, LitmusTest};

use crate::machine::{FinalState, Machine, SimArch};

/// The outcome of running one litmus test many times.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObservationReport {
    /// The test name.
    pub name: String,
    /// The architecture simulated.
    pub arch: SimArch,
    /// Total number of runs.
    pub runs: usize,
    /// Runs whose final state satisfied the postcondition.
    pub matching_runs: usize,
    /// Number of distinct final states seen across all runs.
    pub distinct_states: usize,
    /// True if the postcondition was observed at least once (the paper's
    /// "seen" column).
    pub observed: bool,
}

/// Evaluates a postcondition against a final state.
pub fn satisfies(state: &FinalState, test: &LitmusTest) -> bool {
    test.post.conjuncts.iter().all(|cond| match cond {
        Cond::RegEq { thread, reg, value } => {
            state
                .registers
                .iter()
                .find(|(t, r, _)| t == thread && r == reg)
                .map(|(_, _, v)| *v)
                .unwrap_or(0)
                == *value
        }
        Cond::LocEq { loc, value } => {
            state
                .memory
                .iter()
                .find(|(l, _)| l == loc)
                .map(|(_, v)| *v)
                .unwrap_or(0)
                == *value
        }
        Cond::TxnCommitted { thread } => state
            .txn_committed
            .iter()
            .find(|(t, _)| t == thread)
            .map(|(_, ok)| *ok)
            .unwrap_or(false),
    })
}

/// Runs `test` `runs` times on the `arch` simulator with schedules derived
/// from `seed`, reporting whether its postcondition is observable.
pub fn run_test(arch: SimArch, test: &LitmusTest, runs: usize, seed: u64) -> ObservationReport {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut matching = 0usize;
    let mut states: Vec<FinalState> = Vec::new();
    for _ in 0..runs {
        let machine = Machine::new(arch, test);
        let mut run_rng = SimRng::seed_from_u64(rng.next_u64());
        let state = machine.run(&mut run_rng);
        if satisfies(&state, test) {
            matching += 1;
        }
        if !states.contains(&state) {
            states.push(state);
        }
    }
    ObservationReport {
        name: test.name.clone(),
        arch,
        runs,
        matching_runs: matching,
        distinct_states: states.len(),
        observed: matching > 0,
    }
}

/// Runs a whole suite, returning one report per test.
pub fn run_suite(
    arch: SimArch,
    tests: &[LitmusTest],
    runs_per_test: usize,
    seed: u64,
) -> Vec<ObservationReport> {
    tests
        .iter()
        .enumerate()
        .map(|(i, t)| run_test(arch, t, runs_per_test, seed.wrapping_add(i as u64)))
        .collect()
}

/// Summary statistics for a suite run: how many tests were observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuiteObservation {
    /// Number of tests in the suite.
    pub total: usize,
    /// Number of tests whose postcondition was observed at least once.
    pub seen: usize,
}

impl SuiteObservation {
    /// Aggregates per-test reports.
    pub fn from_reports(reports: &[ObservationReport]) -> SuiteObservation {
        SuiteObservation {
            total: reports.len(),
            seen: reports.iter().filter(|r| r.observed).count(),
        }
    }

    /// Tests not observed (the paper's `¬S` column).
    pub fn not_seen(&self) -> usize {
        self.total - self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_litmus::from_execution;

    #[test]
    fn reports_count_matching_runs_and_states() {
        let test = from_execution(&tm_exec::catalog::sb(), "sb");
        let report = run_test(SimArch::X86, &test, 300, 1);
        assert_eq!(report.runs, 300);
        assert!(report.observed);
        assert!(report.matching_runs > 0);
        assert!(report.distinct_states >= 2);
    }

    #[test]
    fn satisfies_checks_all_conjunct_kinds() {
        let state = FinalState {
            memory: vec![("x".into(), 2)],
            registers: vec![(1, tm_litmus::Reg(0), 2)],
            txn_committed: vec![(0, true)],
        };
        let mut test = LitmusTest::new("t");
        test.post.conjuncts = vec![
            Cond::LocEq {
                loc: "x".into(),
                value: 2,
            },
            Cond::RegEq {
                thread: 1,
                reg: tm_litmus::Reg(0),
                value: 2,
            },
            Cond::TxnCommitted { thread: 0 },
        ];
        assert!(satisfies(&state, &test));
        test.post.conjuncts.push(Cond::LocEq {
            loc: "y".into(),
            value: 1,
        });
        assert!(!satisfies(&state, &test));
    }

    #[test]
    fn suite_observation_aggregates() {
        let tests = vec![
            from_execution(&tm_exec::catalog::sb(), "sb"),
            from_execution(&tm_exec::catalog::sb_mfence(), "sb+mfence"),
        ];
        let reports = run_suite(SimArch::X86, &tests, 300, 3);
        let summary = SuiteObservation::from_reports(&reports);
        assert_eq!(summary.total, 2);
        assert_eq!(summary.seen, 1);
        assert_eq!(summary.not_seen(), 1);
    }

    #[test]
    fn runs_are_reproducible_for_a_fixed_seed() {
        let test = from_execution(&tm_exec::catalog::mp(), "mp");
        let a = run_test(SimArch::Power, &test, 100, 99);
        let b = run_test(SimArch::Power, &test, 100, 99);
        assert_eq!(a, b);
    }
}

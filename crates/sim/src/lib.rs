//! Operational weak-memory + HTM simulators and a litmus-test runner.
//!
//! The paper validates its axiomatic models by running synthesised litmus
//! tests on real TSX and POWER8 hardware. This crate is the substitute for
//! that silicon (see DESIGN.md): operational machines for x86 (TSO store
//! buffers), ARMv8 (out-of-order, multicopy-atomic) and Power (out-of-order,
//! non-multicopy-atomic write propagation), each with a best-effort hardware
//! transactional memory, plus a runner that executes a litmus test under many
//! randomised schedules and reports whether its postcondition is observable.
//!
//! Soundness of an axiomatic model with respect to these machines plays the
//! role of soundness with respect to hardware: no test in a Forbid suite
//! should ever be observed.
//!
//! # Quick start
//!
//! ```
//! use tm_exec::catalog;
//! use tm_litmus::from_execution;
//! use tm_sim::{run_test, SimArch};
//!
//! let sb = from_execution(&catalog::sb(), "sb");
//! let report = run_test(SimArch::X86, &sb, 500, 42);
//! assert!(report.observed); // store buffering is real on x86
//!
//! let sb_txn = from_execution(&catalog::sb_txn(), "sb+txn");
//! let report = run_test(SimArch::X86, &sb_txn, 500, 42);
//! assert!(!report.observed); // transactions serialise it away
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod rng;
mod runner;

pub use machine::{explore, FinalState, Machine, SimArch};
pub use rng::SimRng;
pub use runner::{run_suite, run_test, satisfies, ObservationReport, SuiteObservation};

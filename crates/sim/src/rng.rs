//! A small, dependency-free deterministic PRNG for schedule exploration.
//!
//! The simulators only need a reproducible stream of schedule choices, not
//! cryptographic quality, so a SplitMix64 generator (Steele, Lea & Flood,
//! OOPSLA'14) is more than enough and keeps the crate std-only.

/// A deterministic pseudo-random generator (SplitMix64).
///
/// The same seed always produces the same schedule stream, which is what
/// makes litmus runs reproducible across machines.
#[derive(Clone, Debug)]
pub struct SimRng(u64);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range_f64(0.02, 1.0);
            assert!((0.02..1.0).contains(&x));
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            low |= x < 0.25;
            high |= x > 0.75;
        }
        assert!(low && high);
    }
}

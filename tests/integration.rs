//! Cross-crate integration tests: the full toolflow from execution
//! enumeration through model checking, litmus generation, and simulation.

use tm_weak_memory::exec::catalog;
use tm_weak_memory::litmus::{from_execution, parse_suite, render, to_text, Arch};
use tm_weak_memory::metatheory::{compile_execution, elide};
use tm_weak_memory::models::{Target, X86Model};
use tm_weak_memory::sim::{run_test, SimArch};
use tm_weak_memory::synth::{enumerate_exact, synthesise_suites, SynthConfig};

/// The paper's soundness claim, end to end on a small bound: no test in a
/// synthesised x86 Forbid suite is ever observed on the x86 simulator.
#[test]
fn synthesised_x86_forbid_tests_are_never_observed() {
    let cfg = SynthConfig::x86(3);
    let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
    assert!(!report.forbid.is_empty());
    let mut runnable = 0;
    for test in &report.forbid {
        // With three or more writes to one location the generated
        // postcondition cannot pin down every coherence edge (footnote 2 of
        // the paper adds observer constraints for this); only the fully
        // pinned tests are meaningful to run.
        let exec = &test.execution;
        let co_pinned = exec.locations().iter().all(|&loc| {
            exec.writes()
                .iter()
                .filter(|&w| exec.event(w).loc() == Some(loc))
                .count()
                <= 2
        });
        if !co_pinned {
            continue;
        }
        runnable += 1;
        let obs = run_test(SimArch::X86, &test.litmus, 1500, 11);
        assert!(
            !obs.observed,
            "forbidden test {} was observed on the simulator",
            test.litmus.name
        );
    }
    assert!(runnable > 0);
}

/// A decent fraction of the Allow suite is observable, mirroring the
/// completeness evidence of §5.3 (83% for x86 on real silicon; the
/// operational simulator is more conservative but must observe some).
#[test]
fn some_x86_allow_tests_are_observed() {
    let cfg = SynthConfig::x86(3);
    let report = synthesise_suites(&X86Model::tm(), &X86Model::baseline(), &cfg, 3);
    let observed = report
        .allow
        .iter()
        .filter(|t| run_test(SimArch::X86, &t.litmus, 1500, 13).observed)
        .count();
    assert!(
        observed > 0,
        "none of {} allowed tests was observed",
        report.allow.len()
    );
}

/// Every enumerated execution round-trips through the litmus text format.
#[test]
fn enumerated_executions_roundtrip_through_the_text_format() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let cfg = SynthConfig::x86(3);
    let checked = AtomicUsize::new(0);
    enumerate_exact(&cfg, 3, |exec| {
        let i = checked.fetch_add(1, Ordering::Relaxed);
        if i >= 200 {
            return;
        }
        let test = from_execution(exec, &format!("t{i}"));
        let parsed = parse_suite(&to_text(&test)).expect("generated tests parse");
        assert_eq!(parsed, vec![test]);
    });
    assert!(checked.load(Ordering::Relaxed) >= 200);
}

/// The axiomatic models agree with the operational simulators on the
/// catalog: anything the model forbids is never observed (soundness of the
/// model w.r.t. our hardware substitute).
#[test]
fn models_are_sound_for_the_simulators_on_the_catalog() {
    let cases = [
        (catalog::sb(), "sb"),
        (catalog::sb_txn(), "sb-txn"),
        (catalog::sb_mfence(), "sb-mfence"),
        (catalog::mp(), "mp"),
        (catalog::mp_txn(), "mp-txn"),
        (catalog::lb(), "lb"),
        (catalog::lb_txn(), "lb-txn"),
        (catalog::wrc(), "wrc"),
        (catalog::iriw(), "iriw"),
        (catalog::fig2(), "fig2"),
        (catalog::power_wrc_tprop1(), "power-1"),
        (catalog::power_wrc_tprop2(), "power-2"),
        (catalog::power_iriw_two_txns(), "power-3"),
    ];
    let pairs = [
        (Target::X86Tm, SimArch::X86),
        (Target::PowerTm, SimArch::Power),
        (Target::Armv8Tm, SimArch::Armv8),
    ];
    for (exec, name) in &cases {
        let test = from_execution(exec, name);
        for (target, sim) in pairs {
            let model = target.model();
            if !model.is_consistent(exec) {
                let obs = run_test(sim, &test, 1200, 17);
                assert!(
                    !obs.observed,
                    "{name}: forbidden under {} but observed on {sim:?}",
                    model.name()
                );
            }
        }
    }
}

/// Compiled C++ executions remain well-formed and keep their verdict-shape
/// across all three targets, and the lock-elision mapping renders to
/// plausible assembly.
#[test]
fn mappings_compose_with_litmus_rendering() {
    let src = catalog::mp_txn();
    for target in [Arch::X86, Arch::Power, Arch::Armv8] {
        let compiled = compile_execution(&src, target);
        let test = from_execution(&compiled, "compiled-mp-txn");
        let asm = render(&test, target);
        assert!(asm.contains("exists"));
    }
    let concrete = elide(&catalog::fig10_abstract(), Arch::Armv8, false);
    let asm = render(&from_execution(&concrete, "elided"), Arch::Armv8);
    assert!(asm.contains("TXBEGIN"));
}

/// The transactional models refine TSC downwards and isolation upwards: on
/// every small enumerated execution, TSC-consistency implies consistency in
/// each hardware TM model, which in turn implies weak isolation.
#[test]
fn models_sit_between_weak_isolation_and_tsc() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tm_weak_memory::models::isolation::weak_isolation;
    let cfg = SynthConfig::x86(3);
    let tsc = Target::Tsc.model();
    let models: Vec<_> = Target::HARDWARE_TM.iter().map(|t| t.model()).collect();
    let checked = AtomicUsize::new(0);
    enumerate_exact(&cfg, 3, |exec| {
        if checked.fetch_add(1, Ordering::Relaxed) >= 400 {
            return;
        }
        // An RMW whose halves straddle a transaction boundary always fails
        // on Power and ARMv8 (TxnCancelsRMW), which TSC knows nothing about;
        // exclude those executions from the TSC-implies-consistent direction.
        let rmw_straddles_txn = !exec
            .rmw
            .intersection(&exec.tfence().transitive_closure())
            .is_empty();
        for model in &models {
            if tsc.is_consistent(exec) && !rmw_straddles_txn {
                assert!(
                    model.is_consistent(exec),
                    "{} forbids a TSC-consistent execution",
                    model.name()
                );
            }
            if model.is_consistent(exec) {
                assert!(
                    weak_isolation(exec),
                    "{} allows a weak-isolation violation",
                    model.name()
                );
            }
        }
    });
    assert!(checked.load(Ordering::Relaxed) >= 400);
}

//! Guards on the `.cat` files shipped under `models/`: every generated file
//! must reload into a model that matches its built-in target verdict for
//! verdict on the litmus catalog, and the hand-written novel model must
//! load (through its `include`) and behave as documented.

use std::path::{Path, PathBuf};

use tm_cat::load_file;
use tm_weak_memory::exec::catalog;
use tm_weak_memory::models::{MemoryModel, Target};

fn models_dir() -> PathBuf {
    // crates/tm/../../models, anchored to the manifest so the test runs
    // from any working directory.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

#[test]
fn every_shipped_target_model_matches_its_builtin() {
    let cases = [
        (Target::Sc, "sc.cat"),
        (Target::Tsc, "tsc.cat"),
        (Target::X86, "x86.cat"),
        (Target::X86Tm, "x86_tm.cat"),
        (Target::Power, "power.cat"),
        (Target::PowerTm, "power_tm.cat"),
        // The hand-written `let rec` rewrite of power_tm's tfence+ closure:
        // the fixpoint is concretely the same relation, so it must stay
        // witness-identical to the built-in target (see analysis_parity.rs
        // for the exhaustive sweep).
        (Target::PowerTm, "power_tm_rec.cat"),
        (Target::Armv8, "armv8.cat"),
        (Target::Armv8Tm, "armv8_tm.cat"),
        (Target::Cpp, "cpp.cat"),
        (Target::CppTm, "cpp_tm.cat"),
    ];
    let execs = catalog::named();
    for (target, file) in cases {
        let path = models_dir().join(file);
        let loaded =
            load_file(&path).unwrap_or_else(|e| panic!("{}: load failed\n{e}", path.display()));
        let builtin = target.model();
        assert_eq!(loaded.name(), builtin.name(), "{file}");
        assert_eq!(loaded.axioms(), builtin.axioms(), "{file}");
        for (name, exec) in &execs {
            let got = loaded.check(exec);
            let expected = builtin.check(exec);
            assert_eq!(
                got.violations, expected.violations,
                "{file} drifts from built-in {target} on {name}: loaded {got}, builtin {expected}"
            );
        }
    }
}

#[test]
fn every_shipped_model_lints_clean() {
    // The CI `cat-lint` job gates on this with `--deny warnings`; keeping
    // the same guarantee in-tree means `cargo test` catches a freshly
    // introduced finding (or a lint false positive) without the workflow.
    let mut checked = 0;
    for entry in std::fs::read_dir(models_dir()).expect("models/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "cat") {
            continue;
        }
        let warnings = tm_cat::lint_file(&path)
            .unwrap_or_else(|e| panic!("{}: lint failed\n{e}", path.display()));
        assert!(
            warnings.is_empty(),
            "{} has lint findings:\n{}",
            path.display(),
            warnings
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join("\n\n")
        );
        checked += 1;
    }
    assert!(checked >= 12, "only {checked} models linted");
}

#[test]
fn the_novel_model_loads_through_its_include_and_behaves() {
    let model = load_file(models_dir().join("tcoh.cat")).expect("tcoh.cat loads");
    assert_eq!(model.name(), "SC-per-loc+WeakIsol");
    assert_eq!(model.axioms(), vec!["Coherence", "WeakIsol"]);
    // Store buffering reorders across locations: coherence alone allows it.
    assert!(model.is_consistent(&catalog::sb()));
    // The transactional load-buffering run violates weak isolation.
    assert!(!model.is_consistent(&catalog::lb_txn()));
    // Fig. 1's same-location hb cycle violates per-location SC.
    assert!(model.check(&catalog::fig1()).violates("Coherence"));
}

#[test]
fn the_novel_model_is_syntactically_monotone() {
    // The ISSUE's promise: metatheory runs on loaded models for free. tcoh's
    // axioms mention transactions only through weaklift(com, stxn), which is
    // mixed in stxn — the analysis must run and report, not panic.
    let model = load_file(models_dir().join("tcoh.cat")).expect("tcoh.cat loads");
    let report = tm_weak_memory::metatheory::syntactic_monotonicity_of(model.table(), model.pool());
    assert_eq!(report.model, "SC-per-loc+WeakIsol");
    assert_eq!(report.per_axiom.len(), 2);
    // Coherence never mentions transactions; WeakIsol is mixed (the lift).
    assert!(!report.conclusive());
    assert_eq!(report.blocking_axioms(), vec!["WeakIsol"]);
}

//! Regression tests for the `ExecView` migration: every model must produce
//! identical verdicts on the full litmus catalog whether derived relations
//! are memoized (the post-migration hot path) or recomputed on every access
//! (the pre-migration behaviour, reproduced by `ExecView::uncached`).
//!
//! A golden table of consistency verdicts additionally pins the catalog
//! behaviour of all ten targets, so a future change to the cache layer that
//! silently flips a verdict fails loudly here.

use tm_weak_memory::exec::catalog;
use tm_weak_memory::exec::{ExecView, Execution};
use tm_weak_memory::models::Target;

/// The full catalog: every execution discussed in the paper, with a stable
/// name for error messages.
fn full_catalog() -> Vec<(String, Execution)> {
    let mut execs = vec![
        ("fig1".to_string(), catalog::fig1()),
        ("fig2".to_string(), catalog::fig2()),
        ("power_wrc_tprop1".to_string(), catalog::power_wrc_tprop1()),
        ("power_wrc_tprop2".to_string(), catalog::power_wrc_tprop2()),
        (
            "power_iriw_two_txns".to_string(),
            catalog::power_iriw_two_txns(),
        ),
        (
            "power_iriw_one_txn".to_string(),
            catalog::power_iriw_one_txn(),
        ),
        ("remark_5_1_first".to_string(), catalog::remark_5_1_first()),
        (
            "remark_5_1_second".to_string(),
            catalog::remark_5_1_second(),
        ),
        (
            "monotonicity_cex_split".to_string(),
            catalog::monotonicity_cex_split(),
        ),
        (
            "monotonicity_cex_coalesced".to_string(),
            catalog::monotonicity_cex_coalesced(),
        ),
        ("dongol_mp_txn".to_string(), catalog::dongol_mp_txn()),
        ("sb".to_string(), catalog::sb()),
        ("sb_txn".to_string(), catalog::sb_txn()),
        ("sb_mfence".to_string(), catalog::sb_mfence()),
        ("mp".to_string(), catalog::mp()),
        ("mp_txn".to_string(), catalog::mp_txn()),
        ("lb".to_string(), catalog::lb()),
        ("lb_txn".to_string(), catalog::lb_txn()),
        ("wrc".to_string(), catalog::wrc()),
        ("iriw".to_string(), catalog::iriw()),
        ("fig10_abstract".to_string(), catalog::fig10_abstract()),
    ];
    for which in ['a', 'b', 'c', 'd'] {
        execs.push((format!("fig3_{which}"), catalog::fig3(which)));
    }
    for dmb in [false, true] {
        execs.push((
            format!("example_1_1_concrete_{dmb}"),
            catalog::example_1_1_concrete(dmb),
        ));
        execs.push((
            format!("appendix_b_concrete_{dmb}"),
            catalog::appendix_b_concrete(dmb),
        ));
    }
    execs
}

/// The acceptance gate of the memoization refactor: on the full catalog,
/// every target's verdict through the memoized view equals its verdict
/// through the uncached (recompute-per-access) view — violated axioms
/// included, not just the boolean.
#[test]
fn all_models_agree_memoized_vs_uncached_on_full_catalog() {
    for (name, exec) in full_catalog() {
        for target in Target::ALL {
            let model = target.model();
            let memoized = model.check_view(&ExecView::new(&exec));
            let uncached = model.check_view(&ExecView::uncached(&exec));
            assert_eq!(
                memoized.violated_axioms(),
                uncached.violated_axioms(),
                "{target} disagrees between memoized and uncached views on {name}: \
                 memoized={memoized}, uncached={uncached}"
            );
        }
    }
}

/// `MemoryModel::check` (the bare-`Execution` entry point) must route
/// through the same machinery: same verdict as an explicit memoized view.
#[test]
fn check_and_check_view_agree_on_full_catalog() {
    for (name, exec) in full_catalog() {
        for target in Target::ALL {
            let model = target.model();
            let via_exec = model.check(&exec);
            let via_view = model.check_view(&ExecView::new(&exec));
            assert_eq!(
                via_exec.violated_axioms(),
                via_view.violated_axioms(),
                "{target} disagrees between check and check_view on {name}"
            );
            assert_eq!(
                model.is_consistent(&exec),
                model.is_consistent_view(&ExecView::new(&exec)),
                "{target} boolean disagreement on {name}"
            );
        }
    }
}

/// Golden consistency verdicts for a few load-bearing catalog entries (the
/// paper's headline claims), pinned so a cache-layer bug cannot silently
/// flip them. `true` = consistent.
#[test]
fn golden_catalog_verdicts_are_stable() {
    let cases: Vec<(&str, Execution, Target, bool)> = vec![
        // Transactions serialise store buffering away on x86 …
        ("sb", catalog::sb(), Target::X86, true),
        ("sb_txn", catalog::sb_txn(), Target::X86, true),
        ("sb_txn", catalog::sb_txn(), Target::X86Tm, false),
        // … and the TM models enforce strong isolation (Fig. 2 / Fig. 3).
        ("fig2", catalog::fig2(), Target::Sc, true),
        ("fig2", catalog::fig2(), Target::Tsc, false),
        ("fig3_a", catalog::fig3('a'), Target::X86, true),
        ("fig3_a", catalog::fig3('a'), Target::X86Tm, false),
        // The Power barrier-in-transaction executions of §5.2.
        (
            "power_wrc_tprop1",
            catalog::power_wrc_tprop1(),
            Target::Power,
            true,
        ),
        (
            "power_wrc_tprop1",
            catalog::power_wrc_tprop1(),
            Target::PowerTm,
            false,
        ),
        (
            "power_iriw_one_txn",
            catalog::power_iriw_one_txn(),
            Target::PowerTm,
            true,
        ),
        // The headline lock-elision witness (Example 1.1): consistent under
        // the ARMv8 TM extension without the DMB repair, inconsistent with.
        (
            "example_1_1",
            catalog::example_1_1_concrete(false),
            Target::Armv8Tm,
            true,
        ),
        (
            "example_1_1_fixed",
            catalog::example_1_1_concrete(true),
            Target::Armv8Tm,
            false,
        ),
        // C++: conflicting transactions synchronise (§7.2).
        ("mp_txn", catalog::mp_txn(), Target::Cpp, true),
        ("mp_txn", catalog::mp_txn(), Target::CppTm, false),
    ];
    for (name, exec, target, expected) in cases {
        assert_eq!(
            target.model().is_consistent(&exec),
            expected,
            "golden verdict changed: {name} under {target}"
        );
    }
}

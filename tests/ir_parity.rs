//! Parity of the axiom-IR evaluator against its enumeration oracles.
//!
//! The hand-written `check_view_reference` predicates retired after their
//! one-release soak, so the IR is now pinned against *itself under
//! different evaluation strategies*, which must all agree execution for
//! execution:
//!
//! * the **memoized** view (the production hot path) against the
//!   **uncached** view, which recomputes every derived relation and every
//!   IR node from scratch on each access;
//! * the **full-verdict** path (`check_view`, witnesses extracted, axioms
//!   in declaration order) against the **early-exit** path
//!   (`is_consistent_view`, cheapest axiom first, no witnesses);
//! * the **isolation axioms** against direct relational-algebra
//!   computation of their §3.3 definitions.
//!
//! The incremental evaluator gets the same treatment in
//! `incremental_parity.rs`, driven by the delta-threading enumeration.

use tm_weak_memory::exec::{catalog, ExecView, Execution};
use tm_weak_memory::models::isolation;
use tm_weak_memory::models::{Armv8Model, MemoryModel, PowerModel, Target, X86Model};
use tm_weak_memory::synth::{enumerate_exact, SynthConfig};

/// Every named execution the repository ships.
fn full_catalog() -> Vec<Execution> {
    let mut execs = vec![
        catalog::fig1(),
        catalog::fig2(),
        catalog::power_wrc_tprop1(),
        catalog::power_wrc_tprop2(),
        catalog::power_iriw_two_txns(),
        catalog::power_iriw_one_txn(),
        catalog::remark_5_1_first(),
        catalog::remark_5_1_second(),
        catalog::monotonicity_cex_split(),
        catalog::monotonicity_cex_coalesced(),
        catalog::dongol_mp_txn(),
        catalog::sb(),
        catalog::sb_txn(),
        catalog::sb_mfence(),
        catalog::mp(),
        catalog::mp_txn(),
        catalog::lb(),
        catalog::lb_txn(),
        catalog::wrc(),
        catalog::iriw(),
        catalog::fig10_abstract(),
    ];
    for which in ['a', 'b', 'c', 'd'] {
        execs.push(catalog::fig3(which));
    }
    for dmb in [false, true] {
        execs.push(catalog::example_1_1_concrete(dmb));
        execs.push(catalog::appendix_b_concrete(dmb));
    }
    execs
}

/// Asserts the memoized and uncached views produce the same verdict for
/// `model` on `exec`, and that the early-exit path agrees with it.
fn assert_parity(model: &dyn MemoryModel, exec: &Execution, context: &str) {
    let memo = ExecView::new(exec);
    let fresh = ExecView::uncached(exec);
    let verdict = model.check_view(&memo);
    assert_eq!(
        verdict,
        model.check_view(&fresh),
        "{}: memoized and uncached verdicts differ for {}",
        context,
        model.name()
    );
    for view in [&memo, &fresh] {
        assert_eq!(
            verdict.is_consistent(),
            model.is_consistent_view(view),
            "{}: full-verdict and early-exit paths differ for {}",
            context,
            model.name()
        );
    }
}

#[test]
fn catalog_wide_verdict_parity_for_every_target() {
    for exec in full_catalog() {
        for target in Target::ALL {
            assert_parity(target.model().as_ref(), &exec, "catalog");
        }
    }
}

#[test]
fn catalog_wide_parity_with_cr_order_enabled() {
    let models: [Box<dyn MemoryModel>; 3] = [
        Box::new(X86Model::tm().with_cr_order()),
        Box::new(PowerModel::tm().with_cr_order()),
        Box::new(Armv8Model::tm().with_cr_order()),
    ];
    for exec in full_catalog() {
        for model in &models {
            assert_parity(model.as_ref(), &exec, "catalog+cr");
        }
    }
}

/// `CROrder` violations used to be reported bare because the legacy paths
/// could not extract a witness; the IR evaluator reports the offending
/// cycle like any other acyclicity axiom (ROADMAP "witness-quality parity").
#[test]
fn cr_order_violations_carry_a_witness_cycle() {
    let exec = catalog::fig10_abstract();
    let models: [Box<dyn MemoryModel>; 3] = [
        Box::new(X86Model::tm().with_cr_order()),
        Box::new(PowerModel::tm().with_cr_order()),
        Box::new(Armv8Model::tm().with_cr_order()),
    ];
    for model in &models {
        let verdict = model.check(&exec);
        let violation = verdict
            .violations
            .iter()
            .find(|v| v.axiom == "CROrder")
            .unwrap_or_else(|| panic!("{} misses the CROrder violation", model.name()));
        let cycle = violation
            .witness
            .as_ref()
            .unwrap_or_else(|| panic!("{} reports CROrder without its cycle", model.name()));
        assert!(cycle.len() >= 2, "degenerate CROrder witness {cycle:?}");
    }
}

#[test]
fn catalog_wide_isolation_parity() {
    for exec in full_catalog() {
        let view = ExecView::new(&exec);
        // The §3.3 definitions, computed directly on the relation algebra.
        let com = exec.com();
        assert_eq!(
            isolation::weak_isolation_view(&view),
            Execution::weaklift(&com, &exec.stxn).is_acyclic()
        );
        assert_eq!(
            isolation::strong_isolation_view(&view),
            Execution::stronglift(&com, &exec.stxn).is_acyclic()
        );
        assert_eq!(
            isolation::strong_isolation_atomic_view(&view),
            Execution::stronglift(&com, &exec.stxnat).is_acyclic()
        );
        assert_eq!(
            isolation::cr_order_view(&view),
            Execution::weaklift(&exec.po.union(&com), &exec.scr).is_acyclic()
        );
    }
}

/// Exhaustive agreement over every enumerated execution at |E| ≤ `bound`
/// under `cfg`, for all ten targets at once (one shared view per execution,
/// exactly as the synthesis sweep uses them).
fn exhaustive_parity(cfg: &SynthConfig, bound: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let models: Vec<Box<dyn MemoryModel>> = Target::ALL.iter().map(|t| t.model()).collect();
    let checked = AtomicUsize::new(0);
    for n in 2..=bound {
        enumerate_exact(cfg, n, |exec| {
            let view = ExecView::new(exec);
            let fresh = ExecView::uncached(exec);
            for model in &models {
                let verdict = model.check_view(&view);
                assert_eq!(
                    verdict,
                    model.check_view(&fresh),
                    "memoized and uncached verdicts differ for {} on:\n{exec:?}",
                    model.name()
                );
                assert_eq!(verdict.is_consistent(), model.is_consistent_view(&view));
            }
            checked.fetch_add(1, Ordering::Relaxed);
        });
    }
    checked.into_inner()
}

#[test]
fn exhaustive_parity_on_x86_trimmed_space_up_to_four_events() {
    // The bench sweep's configuration: 2 threads, 2 locations, MFENCE, one
    // transaction — release-friendly at |E| ≤ 4 while still covering
    // fences, transactions and every model's axioms.
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    let checked = exhaustive_parity(&cfg, 4);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_parity_on_power_space_with_rmws_and_dependencies() {
    // Smaller bound, richer vocabulary: sync/lwsync fences, address/data
    // dependencies and RMW pairs exercise TxnCancelsRMW, Propagation and
    // Observation on both paths.
    let cfg = SynthConfig::power(3);
    let checked = exhaustive_parity(&cfg, 3);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_parity_on_cpp_annotated_space() {
    // C++ annotations (relaxed/acquire/release/seq_cst) drive sw, psc and
    // the HbCom axiom; keep the space small with three events.
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    let checked = exhaustive_parity(&cfg, 3);
    assert!(checked > 500, "only {checked} executions enumerated");
}

//! Parity of the axiom-IR evaluator against the retained hand-written
//! checks.
//!
//! Every model's `check_view` now routes through the declarative IR tables
//! (`tm_models::ir`); the pre-IR predicates are kept for one release as
//! `check_view_reference` oracles. These tests pin the two paths to
//! identical verdicts — axiom names, order *and* witnesses — first on the
//! whole named-execution catalog, then exhaustively on every enumerated
//! execution at small bounds.

use tm_weak_memory::exec::{catalog, ExecView, Execution};
use tm_weak_memory::models::isolation;
use tm_weak_memory::models::{Armv8Model, MemoryModel, PowerModel, Target, X86Model};
use tm_weak_memory::synth::{enumerate_exact, SynthConfig};

/// Every named execution the repository ships.
fn full_catalog() -> Vec<Execution> {
    let mut execs = vec![
        catalog::fig1(),
        catalog::fig2(),
        catalog::power_wrc_tprop1(),
        catalog::power_wrc_tprop2(),
        catalog::power_iriw_two_txns(),
        catalog::power_iriw_one_txn(),
        catalog::remark_5_1_first(),
        catalog::remark_5_1_second(),
        catalog::monotonicity_cex_split(),
        catalog::monotonicity_cex_coalesced(),
        catalog::dongol_mp_txn(),
        catalog::sb(),
        catalog::sb_txn(),
        catalog::sb_mfence(),
        catalog::mp(),
        catalog::mp_txn(),
        catalog::lb(),
        catalog::lb_txn(),
        catalog::wrc(),
        catalog::iriw(),
        catalog::fig10_abstract(),
    ];
    for which in ['a', 'b', 'c', 'd'] {
        execs.push(catalog::fig3(which));
    }
    for dmb in [false, true] {
        execs.push(catalog::example_1_1_concrete(dmb));
        execs.push(catalog::appendix_b_concrete(dmb));
    }
    execs
}

/// Asserts IR and reference verdicts agree for `model` on `exec`, on both
/// the memoized and the uncached view.
fn assert_parity(model: &dyn MemoryModel, exec: &Execution, context: &str) {
    for view in [ExecView::new(exec), ExecView::uncached(exec)] {
        let ir = model.check_view(&view);
        let reference = model.check_view_reference(&view);
        assert_eq!(
            ir,
            reference,
            "{}: IR and hand-written verdicts differ for {} \
             (IR: {ir}, reference: {reference})",
            context,
            model.name()
        );
        assert_eq!(ir.is_consistent(), model.is_consistent_view(&view));
    }
}

#[test]
fn catalog_wide_verdict_parity_for_every_target() {
    for exec in full_catalog() {
        for target in Target::ALL {
            assert_parity(target.model().as_ref(), &exec, "catalog");
        }
    }
}

#[test]
fn catalog_wide_parity_with_cr_order_enabled() {
    let models: [Box<dyn MemoryModel>; 3] = [
        Box::new(X86Model::tm().with_cr_order()),
        Box::new(PowerModel::tm().with_cr_order()),
        Box::new(Armv8Model::tm().with_cr_order()),
    ];
    for exec in full_catalog() {
        for model in &models {
            assert_parity(model.as_ref(), &exec, "catalog+cr");
        }
    }
}

#[test]
fn catalog_wide_isolation_parity() {
    for exec in full_catalog() {
        let view = ExecView::new(&exec);
        assert_eq!(
            isolation::weak_isolation_view(&view),
            isolation::weak_isolation_reference(&view)
        );
        assert_eq!(
            isolation::strong_isolation_view(&view),
            isolation::strong_isolation_reference(&view)
        );
        assert_eq!(
            isolation::strong_isolation_atomic_view(&view),
            isolation::strong_isolation_atomic_reference(&view)
        );
        assert_eq!(
            isolation::cr_order_view(&view),
            isolation::cr_order_reference(&view)
        );
    }
}

/// Exhaustive agreement over every enumerated execution at |E| ≤ `bound`
/// under `cfg`, for all ten targets at once (one shared view per execution,
/// exactly as the synthesis sweep uses them).
fn exhaustive_parity(cfg: &SynthConfig, bound: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let models: Vec<Box<dyn MemoryModel>> = Target::ALL.iter().map(|t| t.model()).collect();
    let checked = AtomicUsize::new(0);
    for n in 2..=bound {
        enumerate_exact(cfg, n, |exec| {
            let view = ExecView::new(exec);
            for model in &models {
                let ir = model.check_view(&view);
                let reference = model.check_view_reference(&view);
                assert_eq!(
                    ir,
                    reference,
                    "IR and hand-written verdicts differ for {} on:\n{exec:?}",
                    model.name()
                );
                assert_eq!(ir.is_consistent(), model.is_consistent_view(&view));
            }
            checked.fetch_add(1, Ordering::Relaxed);
        });
    }
    checked.into_inner()
}

#[test]
fn exhaustive_parity_on_x86_trimmed_space_up_to_four_events() {
    // The bench sweep's configuration: 2 threads, 2 locations, MFENCE, one
    // transaction — release-friendly at |E| ≤ 4 while still covering
    // fences, transactions and every model's axioms.
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    let checked = exhaustive_parity(&cfg, 4);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_parity_on_power_space_with_rmws_and_dependencies() {
    // Smaller bound, richer vocabulary: sync/lwsync fences, address/data
    // dependencies and RMW pairs exercise TxnCancelsRMW, Propagation and
    // Observation on both paths.
    let cfg = SynthConfig::power(3);
    let checked = exhaustive_parity(&cfg, 3);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_parity_on_cpp_annotated_space() {
    // C++ annotations (relaxed/acquire/release/seq_cst) drive sw, psc and
    // the HbCom axiom; keep the space small with three events.
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    let checked = exhaustive_parity(&cfg, 3);
    assert!(checked > 500, "only {checked} executions enumerated");
}

//! Parity between the abstract interpreter (`tm_exec::ir::analysis`) and
//! the ground truth of exhaustive enumeration: every universally-quantified
//! claim the analysis makes about a node — provably empty, acyclic or
//! irreflexive on *every* well-formed execution — is checked against every
//! execution of the enumeration spaces the IR parity suite pins. A single
//! counterexample is a soundness bug in a transfer rule, which is exactly
//! the class of bug a lint must never have (a "statically empty" warning on
//! an expression that can hold edges would teach users to ignore the lint).
//!
//! The same spaces also re-verdict a `let rec` rewrite of a shipped model:
//! `models/power_tm_rec.cat` replaces `power_tm.cat`'s `tfence+` closure
//! with its least-fixpoint definition, and the two must agree
//! execution-for-execution, pinning the Kleene evaluation of `Fix` nodes
//! against the closure operator it generalises.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use tm_cat::{load_file, load_str};
use tm_weak_memory::exec::ir::analysis::Analysis;
use tm_weak_memory::exec::ir::{AxiomHead, IrEval, RelId};
use tm_weak_memory::exec::{ExecView, Execution};
use tm_weak_memory::models::ir::IrModel;
use tm_weak_memory::models::MemoryModel;
use tm_weak_memory::synth::{enumerate_exact, SynthConfig};

fn models_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

/// What the analysis claims universally about one node.
#[derive(Clone, Copy, Debug)]
struct Claim {
    id: RelId,
    empty: bool,
    acyclic: bool,
    irreflexive: bool,
}

/// Every closed node's universal claims (open `let rec` bodies only have
/// meaning under an environment; their fixpoints are closed and claimed).
fn claims_of(model: &IrModel) -> Vec<Claim> {
    let analysis = Analysis::new(model.pool());
    model
        .pool()
        .rel_ids()
        .filter(|&id| model.pool().rel_free_vars(id).is_empty())
        .map(|id| Claim {
            id,
            empty: analysis.is_empty(id),
            acyclic: analysis.vacuous(AxiomHead::Acyclic, id),
            irreflexive: analysis.vacuous(AxiomHead::Irreflexive, id),
        })
        .filter(|c| c.empty || c.acyclic || c.irreflexive)
        .collect()
}

/// Checks every claim of every model against every execution of the space.
fn exhaustive_claims(cfg: &SynthConfig, bound: usize, models: &[(&str, IrModel)]) -> usize {
    let claims: Vec<(&str, &IrModel, Vec<Claim>)> = models
        .iter()
        .map(|(name, m)| (*name, m, claims_of(m)))
        .collect();
    for (name, _, claims) in &claims {
        assert!(!claims.is_empty(), "{name}: no claims to check");
    }
    let checked = AtomicUsize::new(0);
    for n in 2..=bound {
        enumerate_exact(cfg, n, |exec: &Execution| {
            let view = ExecView::new(exec);
            for (name, model, claims) in &claims {
                let eval = IrEval::new(model.pool(), &view);
                for claim in claims {
                    let rel = eval.rel(claim.id);
                    if claim.empty {
                        assert!(
                            rel.is_empty(),
                            "{name}: node {:?} claimed empty holds {} edge(s) on:\n{exec:?}",
                            claim.id,
                            rel.len()
                        );
                    }
                    if claim.acyclic {
                        assert!(
                            rel.is_acyclic(),
                            "{name}: node {:?} claimed acyclic has a cycle on:\n{exec:?}",
                            claim.id
                        );
                    }
                    if claim.irreflexive {
                        assert!(
                            (0..rel.universe()).all(|e| !rel.contains(e, e)),
                            "{name}: node {:?} claimed irreflexive has a self-loop on:\n{exec:?}",
                            claim.id
                        );
                    }
                }
            }
            checked.fetch_add(1, Ordering::Relaxed);
        });
    }
    checked.into_inner()
}

/// A fixture packed with statically-empty shapes, so the emptiness claims
/// are exercised even though the shipped models lint clean of them: kind
/// clashes through composition, thread-locality contradictions, impossible
/// identities, and an empty operand threaded through a `let rec` fixpoint.
fn empty_heavy_fixture() -> IrModel {
    load_str(
        "fixture",
        "let a = rf ; rf\n\
         let b = fr ; fr\n\
         let c = po & rfe\n\
         let d = [R & W]\n\
         let rec e = a | (e ; po)\n\
         acyclic (a | b | c | d | e) | po | com as Order\n",
    )
    .expect("fixture elaborates")
}

fn shipped(file: &str) -> IrModel {
    let path = models_dir().join(file);
    load_file(&path).unwrap_or_else(|e| panic!("{}: load failed\n{e}", path.display()))
}

#[test]
fn claims_hold_on_the_x86_trimmed_space_up_to_four_events() {
    // The bench sweep's configuration, mirroring tests/ir_parity.rs.
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    let models = [
        ("sc.cat", shipped("sc.cat")),
        ("tsc.cat", shipped("tsc.cat")),
        ("x86.cat", shipped("x86.cat")),
        ("x86_tm.cat", shipped("x86_tm.cat")),
        ("tcoh.cat", shipped("tcoh.cat")),
        ("fixture", empty_heavy_fixture()),
    ];
    let checked = exhaustive_claims(&cfg, 4, &models);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn claims_hold_on_the_power_space_up_to_three_events() {
    let cfg = SynthConfig::power(3);
    let models = [
        ("power.cat", shipped("power.cat")),
        ("power_tm.cat", shipped("power_tm.cat")),
        ("power_tm_rec.cat", shipped("power_tm_rec.cat")),
    ];
    let checked = exhaustive_claims(&cfg, 3, &models);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn claims_hold_on_the_cpp_space_up_to_three_events() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    let models = [
        ("cpp.cat", shipped("cpp.cat")),
        ("cpp_tm.cat", shipped("cpp_tm.cat")),
    ];
    let checked = exhaustive_claims(&cfg, 3, &models);
    assert!(checked > 500, "only {checked} executions enumerated");
}

/// The `let rec` rewrite of `power_tm.cat`'s `tfence+` closure is
/// verdict-identical to the generated file over the whole power space: the
/// Kleene-solved fixpoint *is* the transitive closure.
#[test]
fn let_rec_rewrite_of_the_tfence_closure_sweeps_identically() {
    let closed = shipped("power_tm.cat");
    let recursive = shipped("power_tm_rec.cat");
    assert_eq!(closed.axioms(), recursive.axioms());
    let cfg = SynthConfig::power(3);
    let checked = AtomicUsize::new(0);
    for n in 2..=3 {
        enumerate_exact(&cfg, n, |exec: &Execution| {
            let view = ExecView::new(exec);
            assert_eq!(
                recursive.is_consistent_view(&view),
                closed.is_consistent_view(&view),
                "let rec rewrite drifts from the +-closure on:\n{exec:?}"
            );
            checked.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert!(
        checked.into_inner() > 1_000,
        "too few executions enumerated"
    );
}

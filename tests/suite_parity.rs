//! Parity of the delta-driven suite-synthesis pipeline against the
//! per-execution one it replaced.
//!
//! [`synthesise_suites`] now runs on the delta-threading enumeration with
//! stateful per-worker checkers and savepoint-probed ⊏-minimality walks;
//! [`synthesise_suites_per_execution`] is the retained pre-incremental
//! pipeline (fresh views, cloned weakenings, globally locked sinks). These
//! tests pin them to each other — identical Forbid and Allow sets (by
//! canonical signature), identical transaction histograms, identical
//! enumeration counts — on all five transactional models at small bounds,
//! pin the x86 Forbid count against the paper's Table 1, and assert the
//! incremental engine never took the footprint-invalidation fallback on a
//! maintainable monotone node while doing so (the removal deltas of the
//! odometer walk and of every weakening probe are *maintained*, by
//! counting-based deletion and DRed rederivation).

use tm_weak_memory::exec::ir::Delta;
use tm_weak_memory::exec::Execution;
use tm_weak_memory::models::ir::IncrementalChecker;
use tm_weak_memory::models::{Target, X86Model};
use tm_weak_memory::synth::{
    canonical_signature, enumerate_exact_incremental, synthesise_suites,
    synthesise_suites_per_execution, CanonSig, SuiteReport, SynthConfig,
};

fn signatures(report: &SuiteReport) -> (Vec<CanonSig>, Vec<CanonSig>) {
    let sigs = |tests: &[tm_weak_memory::synth::SynthesisedTest]| {
        let mut sigs: Vec<CanonSig> = tests
            .iter()
            .map(|t| canonical_signature(&t.execution))
            .collect();
        sigs.sort();
        sigs
    };
    (sigs(&report.forbid), sigs(&report.allow))
}

fn assert_suites_match(target: Target, cfg: &SynthConfig, events: usize) {
    let tm_model = target.model();
    let baseline = target.baseline().model();
    let incremental = synthesise_suites(tm_model.as_ref(), baseline.as_ref(), cfg, events);
    let reference =
        synthesise_suites_per_execution(tm_model.as_ref(), baseline.as_ref(), cfg, events);
    assert_eq!(
        incremental.enumerated, reference.enumerated,
        "{target}: pipelines visited different spaces"
    );
    assert_eq!(
        signatures(&incremental),
        signatures(&reference),
        "{target}: Forbid/Allow suites diverged at |E| = {events}"
    );
    assert_eq!(
        incremental.forbid_txn_histogram(),
        reference.forbid_txn_histogram(),
        "{target}: transaction histograms diverged"
    );
    // Expectations ride along identically.
    for t in &incremental.forbid {
        assert!(!tm_model.is_consistent(&t.execution));
        assert!(baseline.is_consistent(&t.execution));
    }
    for t in &incremental.allow {
        assert!(tm_model.is_consistent(&t.execution));
    }
}

#[test]
fn suite_parity_tsc() {
    let cfg = SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        ..SynthConfig::x86(3)
    };
    assert_suites_match(Target::Tsc, &cfg, 3);
}

#[test]
fn suite_parity_x86_tm() {
    assert_suites_match(Target::X86Tm, &SynthConfig::x86(3), 3);
}

#[test]
fn suite_parity_power_tm() {
    assert_suites_match(Target::PowerTm, &SynthConfig::power(2), 2);
    let mut cfg = SynthConfig::power(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.fences = vec![];
    assert_suites_match(Target::PowerTm, &cfg, 3);
}

#[test]
fn suite_parity_armv8_tm() {
    assert_suites_match(Target::Armv8Tm, &SynthConfig::armv8(2), 2);
    let mut cfg = SynthConfig::armv8(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.fences = vec![];
    cfg.read_annots.truncate(1);
    cfg.write_annots.truncate(1);
    assert_suites_match(Target::Armv8Tm, &cfg, 3);
}

#[test]
fn suite_parity_cpp_tm() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    assert_suites_match(Target::CppTm, &cfg, 3);
}

/// The paper's Table 1 reports 4 minimally-forbidden x86+TM tests at three
/// events; the explicit-search pipeline reproduces that count exactly.
#[test]
fn x86_forbid_count_matches_paper_table_1_at_three_events() {
    let report = synthesise_suites(
        &X86Model::tm(),
        &X86Model::baseline(),
        &SynthConfig::x86(3),
        3,
    );
    assert_eq!(report.forbid.len(), 4, "Table 1: x86 |E|=3 Forbid = 4");
    // §5.3: every three-event Forbid test has exactly one transaction.
    assert_eq!(report.forbid_txn_histogram()[1], 4);
}

/// Driving the incremental checker over a delta-threading sweep — the
/// removal-heavy odometer walk — must never take the footprint-invalidation
/// fallback on a maintainable monotone node: every such node is grown and
/// shrunk in place (`maintained`), and only genuinely non-monotone nodes
/// may take the lazy path. The falsifiable all-monotone-pool version of
/// this pin (where even `dropped` must be zero) lives next to the engine,
/// in `tm_exec::ir`'s `monotone_pool_removals_never_drop_any_node`.
#[test]
fn sweep_removal_deltas_never_invalidate_monotone_nodes() {
    let mut cfg = SynthConfig::x86(3);
    cfg.max_threads = 2;
    let totals = std::sync::Mutex::new((0u64, 0u64));
    enumerate_exact_incremental(&cfg, 3, || {
        let totals = &totals;
        let mut guard = scopeguard(move |checker: &IncrementalChecker| {
            let stats = checker.stats();
            let mut totals = totals.lock().unwrap();
            totals.0 += stats.invalidated;
            totals.1 += stats.maintained;
        });
        move |exec: &Execution, delta: &Delta| {
            guard.value.advance(exec, delta);
            guard.value.is_consistent(exec, Target::X86Tm);
            guard.value.is_consistent(exec, Target::X86);
        }
    });
    let (invalidated, maintained) = *totals.lock().unwrap();
    assert_eq!(
        invalidated, 0,
        "a monotone node fell back to footprint invalidation"
    );
    assert!(
        maintained > 0,
        "the sweep must maintain monotone nodes in place"
    );
}

/// Minimal drop-guard plumbing: runs `f` on the held value when the worker
/// sink is dropped at the end of the sweep.
struct ScopeGuard<T, F: FnMut(&T)> {
    value: T,
    f: F,
}

fn scopeguard<F: FnMut(&IncrementalChecker)>(f: F) -> ScopeGuard<IncrementalChecker, F> {
    ScopeGuard {
        value: IncrementalChecker::new(),
        f,
    }
}

impl<T, F: FnMut(&T)> Drop for ScopeGuard<T, F> {
    fn drop(&mut self) {
        (self.f)(&self.value);
    }
}

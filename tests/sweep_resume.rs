//! Crash/resume guarantees of the checkpointed sweep runner (`tm-sweep`).
//!
//! The contract under test: a sweep that is interrupted — by a budget stop,
//! an injected panic, or a stall — and then resumed from its journal
//! produces **identical** Forbid/Allow suites (signatures, counts,
//! transaction histograms, enumeration totals) to an uninterrupted run; a
//! deterministically failing unit is retried, quarantined, and reported
//! without taking the sweep down; and deterministic sharding by unit id
//! partitions the space exactly.

use std::path::PathBuf;
use std::time::Duration;

use tm_weak_memory::models::{MemoryModel, ScModel, X86Model};
use tm_weak_memory::sweep::{
    merge_sharded, run_sweep, FailKind, FailPlan, SweepJob, SweepMode, SweepOptions, SweepStatus,
};
use tm_weak_memory::synth::{
    canonical_signature, work_units, CanonSig, SuiteReport, Symmetry, SynthConfig,
};

/// A fresh scratch directory under the system temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-sweep-resume-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small-but-nontrivial suites job: TSC vs SC over a trimmed 3-event
/// space (the Fig. 3 isolation-violation shapes live here), fast enough
/// for debug-profile test runs.
fn trimmed_config() -> SynthConfig {
    SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 2,
        max_locs: 2,
        ..SynthConfig::x86(3)
    }
}

fn suites_job<'a>(
    tm: &'a dyn MemoryModel,
    base: &'a dyn MemoryModel,
    config: &'a SynthConfig,
) -> SweepJob<'a> {
    SweepJob {
        model: tm,
        baseline: Some(base),
        reference: None,
        mode: SweepMode::Suites,
        config,
        events: config.max_events,
        symmetry: Symmetry::Full,
    }
}

/// Everything about a suite report that the resume contract promises to
/// preserve: canonical and structural signatures of both suites, the
/// transaction histogram, and the enumeration total.
type SuiteProfile = (Vec<(CanonSig, String)>, Vec<String>, Vec<usize>, usize);

fn profile(report: &SuiteReport) -> SuiteProfile {
    let forbid = report
        .forbid
        .iter()
        .map(|t| (canonical_signature(&t.execution), t.execution.signature()))
        .collect();
    let allow = report
        .allow
        .iter()
        .map(|t| t.execution.signature())
        .collect();
    (
        forbid,
        allow,
        report.forbid_txn_histogram(),
        report.enumerated,
    )
}

#[test]
fn unit_ids_are_stable_and_unique() {
    let config = trimmed_config();
    let units = work_units(&config, 3, Symmetry::Full);
    assert!(units.len() > 10, "expected a real unit frontier");
    let ids: Vec<u64> = units.iter().map(|u| u.stable_id(&config, 3)).collect();
    let again: Vec<u64> = work_units(&config, 3, Symmetry::Full)
        .iter()
        .map(|u| u.stable_id(&config, 3))
        .collect();
    assert_eq!(ids, again, "ids must be deterministic");
    let mut dedup = ids.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "ids must be unique");
    // Ids must move with the configuration, or two different sweeps could
    // swap journals.
    let other = SynthConfig {
        max_locs: 3,
        ..trimmed_config()
    };
    let moved: Vec<u64> = work_units(&other, 3, Symmetry::Full)
        .iter()
        .map(|u| u.stable_id(&other, 3))
        .collect();
    assert!(ids.iter().all(|id| !moved.contains(id)));
}

#[test]
fn budget_interruption_then_resume_matches_a_clean_run() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let clean_dir = Scratch::new("budget-clean");
    let clean = run_sweep(&job, &SweepOptions::new(clean_dir.path())).expect("clean run");
    assert_eq!(clean.status, SweepStatus::Complete);
    let clean_report = clean.suites.expect("suites mode");
    assert!(
        !clean_report.forbid.is_empty(),
        "the trimmed space must still contain Forbid tests"
    );

    // A zero budget stops the sweep before any unit is banked.
    let dir = Scratch::new("budget");
    let mut opts = SweepOptions::new(dir.path());
    opts.budget = Some(Duration::ZERO);
    let stopped = run_sweep(&job, &opts).expect("budget run");
    assert_eq!(stopped.status, SweepStatus::BudgetExhausted);
    assert!(stopped.pending_units > 0);

    // Resume without a budget: picks up the journal and finishes.
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let resumed = run_sweep(&job, &opts).expect("resumed run");
    assert_eq!(resumed.status, SweepStatus::Complete);
    assert_eq!(resumed.reused_units, stopped.completed_units);
    assert_eq!(
        profile(&resumed.suites.expect("suites mode")),
        profile(&clean_report),
        "resumed suites must be identical to an uninterrupted run"
    );
}

#[test]
fn a_transient_panic_is_retried_and_the_run_completes() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let clean_dir = Scratch::new("transient-clean");
    let clean = run_sweep(&job, &SweepOptions::new(clean_dir.path())).expect("clean run");

    let dir = Scratch::new("transient");
    let mut opts = SweepOptions::new(dir.path());
    opts.fail_plan = Some(FailPlan {
        kind: FailKind::PanicOnce,
        after_units: 2,
    });
    opts.backoff = Duration::from_millis(1);
    let outcome = run_sweep(&job, &opts).expect("run with transient fault");
    assert_eq!(outcome.status, SweepStatus::Complete);
    assert!(outcome.retried_attempts >= 1, "the panic must cost a retry");
    assert!(outcome.quarantined.is_empty());
    assert_eq!(
        profile(&outcome.suites.expect("suites mode")),
        profile(&clean.suites.expect("suites mode")),
    );
}

#[test]
fn a_deterministic_panic_quarantines_without_aborting_then_resume_heals() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let clean_dir = Scratch::new("quarantine-clean");
    let clean = run_sweep(&job, &SweepOptions::new(clean_dir.path())).expect("clean run");
    let clean_profile = profile(&clean.suites.expect("suites mode"));

    let dir = Scratch::new("quarantine");
    let mut opts = SweepOptions::new(dir.path());
    opts.fail_plan = Some(FailPlan {
        kind: FailKind::Panic,
        after_units: 3,
    });
    opts.retries = 1;
    opts.backoff = Duration::from_millis(1);
    let degraded = run_sweep(&job, &opts).expect("degraded run");
    assert_eq!(degraded.status, SweepStatus::Partial);
    assert_eq!(degraded.quarantined.len(), 1);
    let q = &degraded.quarantined[0];
    assert_eq!(q.attempts, 2, "one attempt plus one retry");
    assert!(q.reason.contains("panic"), "reason was: {}", q.reason);
    assert!(!q.label.is_empty(), "a fresh quarantine carries its label");
    assert_eq!(degraded.completed_units, degraded.total_units - 1);
    assert_eq!(degraded.retried_attempts, 1);

    // Resuming without the fault re-attempts the quarantined unit and the
    // healed run is indistinguishable from a clean one.
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let healed = run_sweep(&job, &opts).expect("healed run");
    assert_eq!(healed.status, SweepStatus::Complete);
    assert!(healed.quarantined.is_empty());
    assert_eq!(profile(&healed.suites.expect("suites mode")), clean_profile);
}

#[test]
fn a_stalled_unit_trips_its_deadline_and_is_quarantined() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let dir = Scratch::new("stall");
    let mut opts = SweepOptions::new(dir.path());
    opts.fail_plan = Some(FailPlan {
        kind: FailKind::Stall,
        after_units: 1,
    });
    opts.unit_deadline = Some(Duration::from_millis(30));
    opts.retries = 1;
    opts.backoff = Duration::from_millis(1);
    let outcome = run_sweep(&job, &opts).expect("stalled run");
    assert_eq!(outcome.status, SweepStatus::Partial);
    assert_eq!(outcome.quarantined.len(), 1);
    assert!(
        outcome.quarantined[0].reason.contains("deadline"),
        "reason was: {}",
        outcome.quarantined[0].reason
    );
}

#[test]
fn sharded_runs_merge_into_the_unsharded_result() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let clean_dir = Scratch::new("shard-clean");
    let clean = run_sweep(&job, &SweepOptions::new(clean_dir.path())).expect("clean run");
    let clean_profile = profile(&clean.suites.expect("suites mode"));

    let dir0 = Scratch::new("shard-0");
    let dir1 = Scratch::new("shard-1");
    let mut shard_outcomes = Vec::new();
    for (i, dir) in [&dir0, &dir1].into_iter().enumerate() {
        let mut opts = SweepOptions::new(dir.path());
        opts.shard = Some((i as u32, 2));
        let outcome = run_sweep(&job, &opts).expect("shard run");
        assert_eq!(outcome.status, SweepStatus::Complete);
        assert!(
            outcome.suites.is_none(),
            "a strict shard must not assemble suites on its own"
        );
        shard_outcomes.push(outcome);
    }
    // The shards partition the space: unit totals add up and neither is
    // empty (an id distribution skewed to one shard would mask bugs).
    assert!(shard_outcomes.iter().all(|o| o.total_units > 0));
    assert_eq!(
        shard_outcomes.iter().map(|o| o.total_units).sum::<usize>(),
        clean.total_units
    );

    let merged = merge_sharded(&job, &[dir0.path(), dir1.path()]).expect("merge");
    assert_eq!(merged.status, SweepStatus::Complete);
    assert_eq!(merged.visited, clean.visited);
    assert_eq!(profile(&merged.suites.expect("suites mode")), clean_profile);
}

#[test]
fn resume_refuses_a_foreign_journal_and_unflagged_overwrites() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let dir = Scratch::new("refuse");
    run_sweep(&job, &SweepOptions::new(dir.path())).expect("first run");

    // Same directory, no --resume: refused, nothing clobbered.
    let err = run_sweep(&job, &SweepOptions::new(dir.path())).expect_err("must refuse");
    assert!(err.to_string().contains("--resume"), "got: {err}");

    // Same directory, --resume, but a different job: refused.
    let other_config = SynthConfig {
        max_locs: 3,
        ..trimmed_config()
    };
    let other_job = suites_job(&tm, &base, &other_config);
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let err = run_sweep(&other_job, &opts).expect_err("must refuse foreign journal");
    assert!(err.to_string().contains("different sweep"), "got: {err}");

    // Same job but symmetry-reduced: its unit counters mean something
    // different, so the full-mode journal must be foreign to it.
    let reduced_job = SweepJob {
        symmetry: Symmetry::Reduced,
        ..suites_job(&tm, &base, &config)
    };
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let err = run_sweep(&reduced_job, &opts).expect_err("must refuse cross-symmetry resume");
    assert!(err.to_string().contains("different sweep"), "got: {err}");
}

/// A symmetry-reduced sweep visits fewer executions but must bank the same
/// suites, survive an interruption, and account for the full space through
/// its orbit weights.
#[test]
fn symmetry_reduced_sweep_resumes_and_matches_the_full_suites() {
    // Three threads: the 2-thread space's partitions ([3], [2, 1]) are all
    // asymmetric, so only here does reduction actually skip executions.
    let config = SynthConfig {
        max_threads: 3,
        ..trimmed_config()
    };
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let full_job = suites_job(&tm, &base, &config);
    let reduced_job = SweepJob {
        symmetry: Symmetry::Reduced,
        ..suites_job(&tm, &base, &config)
    };

    let full_dir = Scratch::new("sym-full");
    let full = run_sweep(&full_job, &SweepOptions::new(full_dir.path())).expect("full run");
    let full_report = full.suites.expect("suites mode");

    let dir = Scratch::new("sym-reduced");
    let mut opts = SweepOptions::new(dir.path());
    opts.budget = Some(Duration::ZERO);
    let stopped = run_sweep(&reduced_job, &opts).expect("budget run");
    assert_eq!(stopped.status, SweepStatus::BudgetExhausted);
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let reduced = run_sweep(&reduced_job, &opts).expect("resumed reduced run");
    assert_eq!(reduced.status, SweepStatus::Complete);
    let reduced_report = reduced.suites.expect("suites mode");

    // Fewer representatives, same orbit-weighted total, identical suites.
    assert!(reduced.visited < full.visited);
    assert_eq!(reduced.weighted_visited, full.visited);
    let (forbid, allow, histogram, _) = profile(&full_report);
    let (r_forbid, r_allow, r_histogram, _) = profile(&reduced_report);
    assert_eq!(forbid, r_forbid);
    assert_eq!(allow, r_allow);
    assert_eq!(histogram, r_histogram);
}

#[test]
fn counts_mode_checkpoints_and_resumes_too() {
    let config = trimmed_config();
    let model = ScModel::tsc();
    let job = SweepJob {
        model: &model,
        baseline: None,
        reference: Some(&model),
        mode: SweepMode::Counts,
        config: &config,
        events: 3,
        symmetry: Symmetry::Full,
    };

    let clean_dir = Scratch::new("counts-clean");
    let clean = run_sweep(&job, &SweepOptions::new(clean_dir.path())).expect("clean counts");
    assert_eq!(clean.status, SweepStatus::Complete);
    assert!(clean.visited > 0);
    assert_eq!(clean.drift, 0, "a model cannot drift from itself");

    let dir = Scratch::new("counts");
    let mut opts = SweepOptions::new(dir.path());
    opts.budget = Some(Duration::ZERO);
    let stopped = run_sweep(&job, &opts).expect("budget counts");
    assert_eq!(stopped.status, SweepStatus::BudgetExhausted);
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let resumed = run_sweep(&job, &opts).expect("resumed counts");
    assert_eq!(resumed.status, SweepStatus::Complete);
    assert_eq!(resumed.visited, clean.visited);
    assert_eq!(resumed.consistent, clean.consistent);
}

/// The paper pin: the x86 TM model's |E|=3 Forbid suite has exactly the 4
/// tests of Table 1, and the checkpointed runner reproduces that — with a
/// crash in the middle.
#[test]
fn x86_three_event_forbid_count_survives_a_crash_and_resume() {
    let config = SynthConfig::x86(3);
    let (tm, base) = (X86Model::tm(), X86Model::baseline());
    let job = suites_job(&tm, &base, &config);

    let dir = Scratch::new("x86-pin");
    let mut opts = SweepOptions::new(dir.path());
    // A deterministic mid-run interruption: quarantine-free, the run just
    // stops early.
    opts.budget = Some(Duration::from_millis(40));
    let stopped = run_sweep(&job, &opts).expect("interrupted x86 run");
    let mut opts = SweepOptions::new(dir.path());
    opts.resume = true;
    let resumed = run_sweep(&job, &opts).expect("resumed x86 run");
    assert_eq!(resumed.status, SweepStatus::Complete);
    assert!(
        resumed.reused_units == stopped.completed_units,
        "every banked unit must be reused"
    );
    let report = resumed.suites.expect("suites mode");
    assert_eq!(report.forbid.len(), 4, "Table 1: x86 |E|=3 Forbid = 4");
    assert_eq!(report.forbid_txn_histogram(), vec![0, 4, 0, 0]);
}

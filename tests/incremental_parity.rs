//! Parity of the *incremental* axiom-IR evaluator against from-scratch
//! evaluation.
//!
//! The incremental engine ([`tm_exec::ir::IncrementalEval`], fronted by
//! [`tm_models::ir::IncrementalChecker`]) keeps node values alive across
//! candidates and absorbs edge deltas — semi-naïve propagation through
//! monotone nodes under additions, footprint invalidation otherwise. These
//! tests pin it, verdict for verdict and witness for witness, to the
//! per-execution evaluator that builds a fresh [`ExecView`] every time:
//!
//! * on **random edge-addition/removal walks** over the whole named-execution
//!   catalog, covering every editable base relation;
//! * **exhaustively**, driven by the delta-threading enumeration
//!   (`enumerate_exact_incremental`) at the same bounds `ir_parity.rs` uses
//!   for the view-based paths — the x86-trimmed space at |E| ≤ 4 plus the
//!   richer Power and C++ vocabularies at |E| ≤ 3.
//!
//! Every walk and sweep additionally pins the engine's maintenance
//! counters: removal deltas must never take the footprint-invalidation
//! fallback on a maintainable monotone node (`stats().invalidated == 0`) —
//! monotone nodes are shrunk in place by counting-based deletion and DRed
//! rederivation, and only genuinely non-monotone nodes drop to the lazy
//! path.

use std::sync::atomic::{AtomicUsize, Ordering};

use tm_weak_memory::exec::ir::{Delta, RelBase};
use tm_weak_memory::exec::{catalog, ExecView, Execution};
use tm_weak_memory::models::ir::IncrementalChecker;
use tm_weak_memory::models::{MemoryModel, Target};
use tm_weak_memory::synth::{enumerate_exact_incremental, SynthConfig};

/// A split-mix style generator: deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Asserts the stateful checker agrees with fresh-view evaluation for every
/// target, with `CROrder` appended on the hardware TM targets.
fn assert_matches_scratch(checker: &mut IncrementalChecker, exec: &Execution, context: &str) {
    let view = ExecView::new(exec);
    for target in Target::ALL {
        let scratch = target.model().check_view(&view);
        assert_eq!(
            checker.check(exec, target),
            scratch,
            "{context}: incremental and from-scratch verdicts differ for {target}"
        );
        assert_eq!(
            checker.is_consistent(exec, target),
            scratch.is_consistent(),
            "{context}: incremental early-exit verdict differs for {target}"
        );
    }
    for target in Target::HARDWARE_TM {
        let with_cr = checker.check_with_cr_order(exec, target, true);
        let scratch_consistent = target.model().is_consistent_view(&view)
            && tm_weak_memory::models::isolation::cr_order_view(&view);
        assert_eq!(
            checker.is_consistent_with_cr_order(exec, target),
            scratch_consistent,
            "{context}: CROrder-extended verdict differs for {target}"
        );
        assert_eq!(with_cr.is_consistent(), scratch_consistent, "{context}");
    }
}

/// The editable base relations, with accessors into an execution.
fn family_rel(exec: &mut Execution, family: RelBase) -> &mut tm_weak_memory::relation::Relation {
    match family {
        RelBase::Rf => &mut exec.rf,
        RelBase::Co => &mut exec.co,
        RelBase::Addr => &mut exec.addr,
        RelBase::Data => &mut exec.data,
        RelBase::Ctrl => &mut exec.ctrl,
        RelBase::Rmw => &mut exec.rmw,
        RelBase::Stxn => &mut exec.stxn,
        RelBase::Stxnat => &mut exec.stxnat,
        RelBase::Scr => &mut exec.scr,
        other => panic!("{other:?} is not an editable family"),
    }
}

/// One checker survives a random add/remove walk over every catalog
/// execution and must agree with from-scratch evaluation at every step.
///
/// The walk edits arbitrary pairs, so intermediate executions need not be
/// well-formed — the axiom IR is pure relational algebra and must evaluate
/// them all the same.
#[test]
fn incremental_matches_scratch_on_random_edge_walks() {
    const FAMILIES: [RelBase; 9] = [
        RelBase::Rf,
        RelBase::Co,
        RelBase::Addr,
        RelBase::Data,
        RelBase::Ctrl,
        RelBase::Rmw,
        RelBase::Stxn,
        RelBase::Stxnat,
        RelBase::Scr,
    ];
    let starting_points = [
        catalog::sb(),
        catalog::sb_txn(),
        catalog::mp_txn(),
        catalog::fig2(),
        catalog::fig3('a'),
        catalog::power_wrc_tprop1(),
        catalog::power_iriw_two_txns(),
        catalog::monotonicity_cex_split(),
        catalog::fig10_abstract(),
        catalog::example_1_1_concrete(true),
    ];
    let mut rng = Rng(0x5eed);
    let mut checker = IncrementalChecker::new();
    for exec in starting_points {
        let mut exec = exec;
        let n = exec.len();
        checker.advance(&exec, &Delta::everything());
        assert_matches_scratch(&mut checker, &exec, "walk start");
        for step in 0..24 {
            // Batch one to three toggles into a single delta so multi-edit
            // deltas (and mixed families) are exercised too.
            let mut delta = Delta::new();
            for _ in 0..1 + rng.below(3) {
                let family = FAMILIES[rng.below(FAMILIES.len())];
                let (a, b) = (rng.below(n), rng.below(n));
                let rel = family_rel(&mut exec, family);
                if rel.contains(a, b) {
                    rel.remove(a, b);
                    delta.remove_edge(family, a, b);
                } else {
                    rel.insert(a, b);
                    delta.add_edge(family, a, b);
                }
            }
            checker.advance(&exec, &delta);
            assert_matches_scratch(&mut checker, &exec, &format!("walk step {step}"));
            assert_eq!(
                checker.stats().invalidated,
                0,
                "a monotone node fell back to footprint invalidation"
            );
        }
    }
    assert!(
        checker.stats().maintained > 0,
        "removal walks must maintain derived nodes in place"
    );
}

/// A walk of pure additions keeps every delta on the semi-naïve path.
#[test]
fn incremental_matches_scratch_on_addition_only_walks() {
    let mut rng = Rng(0xadd);
    let mut checker = IncrementalChecker::new();
    for exec in [catalog::mp(), catalog::lb(), catalog::wrc()] {
        let mut exec = exec;
        let n = exec.len();
        checker.advance(&exec, &Delta::everything());
        for step in 0..24 {
            let mut delta = Delta::new();
            let family = [
                RelBase::Rf,
                RelBase::Co,
                RelBase::Rmw,
                RelBase::Stxn,
                RelBase::Data,
            ][rng.below(5)];
            let (a, b) = (rng.below(n), rng.below(n));
            let rel = family_rel(&mut exec, family);
            if rel.contains(a, b) {
                continue;
            }
            rel.insert(a, b);
            delta.add_edge(family, a, b);
            assert!(delta.is_additions_only());
            checker.advance(&exec, &delta);
            assert_matches_scratch(&mut checker, &exec, &format!("addition step {step}"));
        }
    }
}

/// Exhaustive agreement at |E| ≤ `bound`: the delta-threading enumeration
/// drives a per-worker checker, and every candidate's verdicts must match
/// fresh-view evaluation for all ten targets.
fn exhaustive_incremental_parity(cfg: &SynthConfig, bound: usize) -> usize {
    let checked = AtomicUsize::new(0);
    for n in 2..=bound {
        enumerate_exact_incremental(cfg, n, || {
            let mut checker = IncrementalChecker::new();
            let models: Vec<(Target, Box<dyn MemoryModel>)> =
                Target::ALL.iter().map(|&t| (t, t.model())).collect();
            let checked = &checked;
            move |exec: &Execution, delta: &Delta| {
                checker.advance(exec, delta);
                let view = ExecView::new(exec);
                for (target, model) in &models {
                    assert_eq!(
                        checker.check(exec, *target),
                        model.check_view(&view),
                        "incremental and from-scratch verdicts differ for {target} on:\n{exec:?}"
                    );
                }
                assert_eq!(
                    checker.stats().invalidated,
                    0,
                    "a monotone node fell back to footprint invalidation"
                );
                checked.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    checked.into_inner()
}

#[test]
fn exhaustive_incremental_parity_on_x86_trimmed_space_up_to_four_events() {
    // Mirrors the ir_parity.rs bounds (and the bench sweep configuration).
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    let checked = exhaustive_incremental_parity(&cfg, 4);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_incremental_parity_on_power_space() {
    let cfg = SynthConfig::power(3);
    let checked = exhaustive_incremental_parity(&cfg, 3);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_incremental_parity_on_cpp_annotated_space() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    let checked = exhaustive_incremental_parity(&cfg, 3);
    assert!(checked > 500, "only {checked} executions enumerated");
}

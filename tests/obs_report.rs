//! Observability guarantees of the instrumented sweep (`tm-obs` +
//! `tm-sweep`).
//!
//! The contract under test: the end-of-run report survives a round trip
//! through the std-only JSON codec; counters only ever grow across a
//! crash→resume pair sharing one `Obs` handle; an enabled null-sink run
//! produces byte-identical suites to an uninstrumented run; and the
//! report's `per_unit` array reconciles exactly with the journal's
//! completed-unit set.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

use tm_weak_memory::models::{MemoryModel, X86Model};
use tm_weak_memory::obs::{Json, Obs, SinkKind};
use tm_weak_memory::sweep::{
    journal, report_json, run_sweep, SweepJob, SweepMode, SweepOptions, SweepStatus,
};
use tm_weak_memory::synth::{Symmetry, SynthConfig};

/// A fresh scratch directory under the system temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-obs-report-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The trimmed 3-event space the resume tests use: fast in debug builds,
/// non-trivial unit frontier.
fn trimmed_config() -> SynthConfig {
    SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 2,
        max_locs: 2,
        ..SynthConfig::x86(3)
    }
}

fn counts_job<'a>(model: &'a dyn MemoryModel, config: &'a SynthConfig) -> SweepJob<'a> {
    SweepJob {
        model,
        baseline: None,
        reference: None,
        mode: SweepMode::Counts,
        config,
        events: config.max_events,
        symmetry: Symmetry::Full,
    }
}

/// Every counter in a registry snapshot, by name. Histograms are skipped
/// (their `count`/`sum` are monotone too, but counters are the contract).
fn counters(snapshot: &Json) -> Vec<(String, u64)> {
    match snapshot {
        Json::Obj(pairs) => pairs
            .iter()
            .filter_map(|(name, v)| v.as_u64().map(|n| (name.clone(), n)))
            .collect(),
        _ => panic!("registry snapshot must be an object"),
    }
}

fn unhex(s: &str) -> u64 {
    u64::from_str_radix(s.strip_prefix("0x").expect("0x-prefixed id"), 16)
        .expect("hex unit id parses")
}

#[test]
fn report_round_trips_through_the_json_codec() {
    let scratch = Scratch::new("roundtrip");
    let tm = X86Model::tm();
    let config = trimmed_config();
    let job = counts_job(&tm, &config);
    let obs = Obs::disabled();
    let opts = SweepOptions {
        obs: obs.clone(),
        ..SweepOptions::new(scratch.path())
    };
    let outcome = run_sweep(&job, &opts).expect("sweep runs");
    assert_eq!(outcome.status, SweepStatus::Complete);

    let report = report_json(&job, &outcome, &obs);
    let parsed = Json::parse(&report.render_pretty()).expect("pretty form parses");
    assert_eq!(parsed, report, "pretty round trip must be lossless");
    let parsed = Json::parse(&report.render_compact()).expect("compact form parses");
    assert_eq!(parsed, report, "compact round trip must be lossless");

    // Spot-check the schema while the document is open.
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some("tm-sweep-report/v1")
    );
    assert_eq!(
        parsed
            .get("units")
            .and_then(|u| u.get("total"))
            .and_then(Json::as_u64),
        Some(outcome.total_units as u64)
    );
    assert_eq!(
        parsed
            .get("per_unit")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(outcome.total_units)
    );
}

#[test]
fn counters_stay_monotonic_across_crash_and_resume() {
    let scratch = Scratch::new("monotonic");
    let tm = X86Model::tm();
    let config = trimmed_config();
    let job = counts_job(&tm, &config);

    // One Obs handle shared by both runs — the registry must only grow.
    let obs = Obs::disabled();
    let interrupted = SweepOptions {
        obs: obs.clone(),
        budget: Some(Duration::ZERO),
        ..SweepOptions::new(scratch.path())
    };
    let first = run_sweep(&job, &interrupted).expect("interrupted run");
    assert_eq!(first.status, SweepStatus::BudgetExhausted);
    let before = counters(&obs.registry().to_json());

    let resumed = SweepOptions {
        obs: obs.clone(),
        resume: true,
        ..SweepOptions::new(scratch.path())
    };
    let second = run_sweep(&job, &resumed).expect("resumed run");
    assert_eq!(second.status, SweepStatus::Complete);
    let after = counters(&obs.registry().to_json());

    for (name, was) in &before {
        let now = after
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("counter `{name}` vanished on resume"));
        assert!(
            now >= *was,
            "counter `{name}` went backwards: {was} -> {now}"
        );
    }
    // Fresh completions across both runs cover the frontier exactly once.
    let completed = after
        .iter()
        .find(|(n, _)| n == "sweep.units.completed")
        .map(|(_, v)| *v)
        .expect("completed counter registered");
    assert_eq!(
        completed,
        (first.fresh_units + second.fresh_units) as u64,
        "completed counter must equal the fresh completions of both runs"
    );
    assert_eq!(first.fresh_units + second.fresh_units, second.total_units);
}

#[test]
fn null_sink_suites_are_byte_identical_to_an_uninstrumented_run() {
    let tm = X86Model::tm();
    let base = X86Model::baseline();
    let config = trimmed_config();
    let job = SweepJob {
        model: &tm,
        baseline: Some(&base),
        reference: None,
        mode: SweepMode::Suites,
        config: &config,
        events: config.max_events,
        symmetry: Symmetry::Reduced,
    };

    let render = |outcome: &tm_weak_memory::sweep::SweepOutcome| {
        let report = outcome.suites.as_ref().expect("suites mode");
        let mut text = String::new();
        for t in report.forbid.iter().chain(&report.allow) {
            text.push_str(&t.litmus.to_string());
            text.push('\n');
        }
        format!(
            "enumerated={} effective={} forbid={} allow={}\n{text}",
            report.enumerated,
            report.effective,
            report.forbid.len(),
            report.allow.len()
        )
    };

    let plain_dir = Scratch::new("plain");
    let plain = run_sweep(&job, &SweepOptions::new(plain_dir.path())).expect("uninstrumented run");

    let nulled_dir = Scratch::new("nulled");
    let obs = Obs::with_sink(SinkKind::Null).expect("null sink opens");
    let opts = SweepOptions {
        obs: obs.clone(),
        ..SweepOptions::new(nulled_dir.path())
    };
    let nulled = run_sweep(&job, &opts).expect("instrumented run");

    assert_eq!(plain.status, SweepStatus::Complete);
    assert_eq!(nulled.status, SweepStatus::Complete);
    assert_eq!(
        render(&plain),
        render(&nulled),
        "a null-sink run must synthesise byte-identical suites"
    );
}

#[test]
fn per_unit_reconciles_exactly_with_the_journal() {
    let scratch = Scratch::new("reconcile");
    let tm = X86Model::tm();
    let config = trimmed_config();
    let job = counts_job(&tm, &config);
    let obs = Obs::disabled();

    // Interrupt, then resume to completion — the report must describe the
    // whole frontier, reused units included.
    let interrupted = SweepOptions {
        obs: obs.clone(),
        budget: Some(Duration::ZERO),
        ..SweepOptions::new(scratch.path())
    };
    run_sweep(&job, &interrupted).expect("interrupted run");
    let resumed = SweepOptions {
        obs: obs.clone(),
        resume: true,
        ..SweepOptions::new(scratch.path())
    };
    let outcome = run_sweep(&job, &resumed).expect("resumed run");
    assert_eq!(outcome.status, SweepStatus::Complete);

    let loaded = journal::load(&scratch.path().join("sweep.journal"))
        .expect("journal reads")
        .expect("journal exists");
    let journalled: BTreeSet<u64> = loaded
        .records
        .iter()
        .filter_map(|r| match r {
            journal::Record::UnitDone { unit_id, .. } => Some(*unit_id),
            _ => None,
        })
        .collect();

    let report = report_json(&job, &outcome, &obs);
    let reported: BTreeSet<u64> = report
        .get("per_unit")
        .and_then(Json::as_arr)
        .expect("per_unit array")
        .iter()
        .map(|u| unhex(u.get("unit").and_then(Json::as_str).expect("unit id")))
        .collect();

    assert_eq!(
        reported, journalled,
        "per_unit must list exactly the journal's completed units"
    );
    assert_eq!(reported.len(), outcome.total_units);
}

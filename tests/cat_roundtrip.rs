//! Round-trip golden tests for the `.cat` front end: pretty-print every
//! built-in catalog model to `.cat` source, reparse and re-elaborate it
//! (into a *private* pool, unrelated to the shared catalog pool), and
//! assert verdict-for-verdict parity — on the litmus catalog with
//! witnesses, and exhaustively on the small enumeration spaces the IR
//! parity suite pins.

use tm_cat::{load_str, print_target};
use tm_weak_memory::exec::{catalog, ExecView, Execution};
use tm_weak_memory::models::ir::IrModel;
use tm_weak_memory::models::{MemoryModel, Target};
use tm_weak_memory::synth::{enumerate_exact, SynthConfig};

fn catalog_executions() -> Vec<(&'static str, Execution)> {
    catalog::named()
}

fn reload(target: Target) -> IrModel {
    let text = print_target(target);
    load_str("roundtrip", &text)
        .unwrap_or_else(|e| panic!("{target}: printed model fails to reload\n{e}\n---\n{text}"))
}

/// Litmus-catalog parity, with witnesses: the reloaded model must agree
/// with the built-in one violation-for-violation.
#[test]
fn printed_models_reproduce_builtin_verdicts_on_the_litmus_catalog() {
    for target in Target::ALL {
        let builtin = target.model();
        let reloaded = reload(target);
        assert_eq!(reloaded.name(), builtin.name(), "{target}");
        assert_eq!(reloaded.axioms(), builtin.axioms(), "{target}");
        for (name, exec) in &catalog_executions() {
            let expected = builtin.check(exec);
            let got = reloaded.check(exec);
            assert_eq!(
                got.violations, expected.violations,
                "{target} on {name}: reloaded {got}, builtin {expected}"
            );
        }
    }
}

/// Exhaustive boolean parity over an enumeration space for the targets that
/// space is designed to exercise.
fn exhaustive_roundtrip(cfg: &SynthConfig, bound: usize, targets: &[Target]) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pairs: Vec<(Box<dyn MemoryModel>, IrModel)> =
        targets.iter().map(|&t| (t.model(), reload(t))).collect();
    let checked = AtomicUsize::new(0);
    for n in 2..=bound {
        enumerate_exact(cfg, n, |exec| {
            let view = ExecView::new(exec);
            for (builtin, reloaded) in &pairs {
                assert_eq!(
                    reloaded.is_consistent_view(&view),
                    builtin.is_consistent_view(&view),
                    "{} differs from its .cat round trip on:\n{exec:?}",
                    builtin.name()
                );
            }
            checked.fetch_add(1, Ordering::Relaxed);
        });
    }
    checked.into_inner()
}

#[test]
fn exhaustive_roundtrip_on_x86_trimmed_space_up_to_four_events() {
    // The bench sweep's configuration (2 threads, 2 locations, MFENCE, one
    // transaction), mirroring tests/ir_parity.rs.
    let mut cfg = SynthConfig::x86(4);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.rmws = false;
    cfg.max_txns = 1;
    let checked = exhaustive_roundtrip(
        &cfg,
        4,
        &[Target::Sc, Target::Tsc, Target::X86, Target::X86Tm],
    );
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_roundtrip_on_power_space_up_to_three_events() {
    let cfg = SynthConfig::power(3);
    let checked = exhaustive_roundtrip(&cfg, 3, &[Target::Power, Target::PowerTm]);
    assert!(checked > 1_000, "only {checked} executions enumerated");
}

#[test]
fn exhaustive_roundtrip_on_cpp_annotated_space_up_to_three_events() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    let checked = exhaustive_roundtrip(&cfg, 3, &[Target::Cpp, Target::CppTm]);
    assert!(checked > 500, "only {checked} executions enumerated");
}

/// ARMv8 rides the x86-trimmed shape with its own fences: a smaller smoke
/// on the ARM-specific barriers and one-way accesses.
#[test]
fn exhaustive_roundtrip_on_armv8_space_up_to_three_events() {
    let mut cfg = SynthConfig::armv8(3);
    cfg.max_threads = 2;
    let checked = exhaustive_roundtrip(&cfg, 3, &[Target::Armv8, Target::Armv8Tm]);
    assert!(checked > 500, "only {checked} executions enumerated");
}

//! Golden tests for `.cat` diagnostics: each class of error is pinned down
//! to its exact rendering — message, span arrow, quoted line and caret —
//! so reporting regressions show up as test diffs.

use tm_cat::load_str;

fn diag(source: &str) -> String {
    load_str("golden", source)
        .err()
        .unwrap_or_else(|| panic!("source unexpectedly elaborates:\n{source}"))
        .to_string()
}

#[test]
fn unknown_relation_points_at_the_name() {
    assert_eq!(
        diag("acyclic foo | po as Order\n"),
        "\
error: unknown name `foo`
  --> <input>:1:9
   |
 1 | acyclic foo | po as Order
   |         ^^^"
    );
}

#[test]
fn composing_a_set_is_a_kind_mismatch() {
    assert_eq!(
        diag("let hb = po ; W\nacyclic hb as Order\n"),
        "\
error: `;` composes relations, but this operand is a set (write `[S]` for the identity relation on it)
  --> <input>:1:15
   |
 1 | let hb = po ; W
   |               ^"
    );
}

#[test]
fn identity_brackets_need_a_set() {
    assert_eq!(
        diag("acyclic [po] ; rf as Order\n"),
        "\
error: `[_]` needs a set, but this expression is a relation
  --> <input>:1:10
   |
 1 | acyclic [po] ; rf as Order
   |          ^^"
    );
}

#[test]
fn mixed_union_reports_both_kinds() {
    assert_eq!(
        diag("acyclic po | W as Order\n"),
        "\
error: `|` needs both operands of the same kind, but the left is a relation and the right is a set
  --> <input>:1:9
   |
 1 | acyclic po | W as Order
   |         ^^^^^^"
    );
}

#[test]
fn unterminated_let_rec_reports_the_missing_binding() {
    assert_eq!(
        diag("let rec hb = po | hb and"),
        "\
error: unterminated `let rec`: expected a binding, found end of input
  --> <input>:1:25
   |
 1 | let rec hb = po | hb and
   |                         ^"
    );
}

#[test]
fn genuine_recursion_is_rejected_with_guidance() {
    assert_eq!(
        diag("let rec hb = po | hb\nacyclic hb as Order\n"),
        "\
error: recursive definition of `hb` (via `hb`) is not supported: the IR has no fixpoint operator; express the recursion with the closure operators `+` or `*`
  --> <input>:1:9
   |
 1 | let rec hb = po | hb
   |         ^^"
    );
}

#[test]
fn bad_tokens_are_lexical_errors() {
    assert_eq!(
        diag("acyclic po @ rf as Order\n"),
        "\
error: unexpected character `@`
  --> <input>:1:12
   |
 1 | acyclic po @ rf as Order
   |            ^"
    );
}

#[test]
fn wrong_arity_on_lift_functions() {
    assert_eq!(
        diag("acyclic stronglift(com) as Order\n"),
        "\
error: `stronglift` takes 2 argument(s), found 1
  --> <input>:1:9
   |
 1 | acyclic stronglift(com) as Order
   |         ^^^^^^^^^^^^^^^"
    );
}

#[test]
fn domain_of_a_non_rmw_relation_is_rejected() {
    assert_eq!(
        diag("acyclic [domain(po)] ; rf as Order\n"),
        "\
error: `domain(...)` is only available for the primitive `rmw` relation
  --> <input>:1:17
   |
 1 | acyclic [domain(po)] ; rf as Order
   |                 ^^"
    );
}

//! Golden tests for `.cat` diagnostics: each class of error *and lint
//! warning* is pinned down to its exact rendering — message, span arrow,
//! quoted line and caret — so reporting regressions show up as test diffs.

use tm_cat::{lint_str, load_str};

fn diag(source: &str) -> String {
    load_str("golden", source)
        .err()
        .unwrap_or_else(|| panic!("source unexpectedly elaborates:\n{source}"))
        .to_string()
}

/// Lints `source` and renders every finding, double-newline separated.
fn lints(source: &str) -> String {
    lint_str("golden", source)
        .unwrap_or_else(|e| panic!("source fails to elaborate:\n{e}"))
        .iter()
        .map(|w| w.to_string())
        .collect::<Vec<_>>()
        .join("\n\n")
}

#[test]
fn unknown_relation_points_at_the_name() {
    assert_eq!(
        diag("acyclic foo | po as Order\n"),
        "\
error: unknown name `foo`
  --> <input>:1:9
   |
 1 | acyclic foo | po as Order
   |         ^^^"
    );
}

#[test]
fn composing_a_set_is_a_kind_mismatch() {
    assert_eq!(
        diag("let hb = po ; W\nacyclic hb as Order\n"),
        "\
error: `;` composes relations, but this operand is a set (write `[S]` for the identity relation on it)
  --> <input>:1:15
   |
 1 | let hb = po ; W
   |               ^"
    );
}

#[test]
fn identity_brackets_need_a_set() {
    assert_eq!(
        diag("acyclic [po] ; rf as Order\n"),
        "\
error: `[_]` needs a set, but this expression is a relation
  --> <input>:1:10
   |
 1 | acyclic [po] ; rf as Order
   |          ^^"
    );
}

#[test]
fn mixed_union_reports_both_kinds() {
    assert_eq!(
        diag("acyclic po | W as Order\n"),
        "\
error: `|` needs both operands of the same kind, but the left is a relation and the right is a set
  --> <input>:1:9
   |
 1 | acyclic po | W as Order
   |         ^^^^^^"
    );
}

#[test]
fn unterminated_let_rec_reports_the_missing_binding() {
    assert_eq!(
        diag("let rec hb = po | hb and"),
        "\
error: unterminated `let rec`: expected a binding, found end of input
  --> <input>:1:25
   |
 1 | let rec hb = po | hb and
   |                         ^"
    );
}

#[test]
fn non_stratified_recursion_names_the_cycle() {
    assert_eq!(
        diag("let rec a = po \\ a\nacyclic a as A\n"),
        "\
error: recursive cycle through `a` is not positively stratified: `a` occurs negatively in the definition of `a` (under the right of `\\`, or inside a lift); only positive recursion has a least fixpoint
  --> <input>:1:9
   |
 1 | let rec a = po \\ a
   |         ^"
    );
}

#[test]
fn unused_let_warns_at_the_binding_name() {
    assert_eq!(
        lints("let dead = rf\nacyclic po | com as Order\n"),
        "\
warning[unused-let]: binding `dead` is never used by any axiom
  --> <input>:1:5
   |
 1 | let dead = rf
   |     ^^^^"
    );
}

#[test]
fn shadowing_a_primitive_warns() {
    assert_eq!(
        lints("let com = po | rf\nacyclic com as Order\n"),
        "\
warning[shadowed-let]: binding `com` shadows the primitive relation of the same name
  --> <input>:1:5
   |
 1 | let com = po | rf
   |     ^^^"
    );
}

#[test]
fn vacuous_axiom_warns_with_the_proved_claim() {
    assert_eq!(
        lints("acyclic po as Order\n"),
        "\
warning[vacuous-axiom]: axiom `Order` is vacuous: its body is provably acyclic on every well-formed execution, so the axiom constrains nothing
  --> <input>:1:9
   |
 1 | acyclic po as Order
   |         ^^"
    );
}

#[test]
fn statically_empty_composition_warns_at_the_expression() {
    assert_eq!(
        lints("acyclic (rf ; rf) | po | com as Order\n"),
        "\
warning[statically-empty]: this expression is provably empty on every well-formed execution (its operands' event kinds can never meet)
  --> <input>:1:10
   |
 1 | acyclic (rf ; rf) | po | com as Order
   |          ^^^^^^^"
    );
}

#[test]
fn redundant_axiom_names_its_witness() {
    assert_eq!(
        lints("acyclic po | com as A\nacyclic po-loc | com as B\n"),
        "\
warning[redundant-axiom]: axiom `B` is redundant: every execution satisfying axiom `A` already satisfies it
  --> <input>:2:9
   |
 2 | acyclic po-loc | com as B
   |         ^^^^^^^^^^^^"
    );
}

#[test]
fn bad_tokens_are_lexical_errors() {
    assert_eq!(
        diag("acyclic po @ rf as Order\n"),
        "\
error: unexpected character `@`
  --> <input>:1:12
   |
 1 | acyclic po @ rf as Order
   |            ^"
    );
}

#[test]
fn wrong_arity_on_lift_functions() {
    assert_eq!(
        diag("acyclic stronglift(com) as Order\n"),
        "\
error: `stronglift` takes 2 argument(s), found 1
  --> <input>:1:9
   |
 1 | acyclic stronglift(com) as Order
   |         ^^^^^^^^^^^^^^^"
    );
}

#[test]
fn domain_of_a_non_rmw_relation_is_rejected() {
    assert_eq!(
        diag("acyclic [domain(po)] ; rf as Order\n"),
        "\
error: `domain(...)` is only available for the primitive `rmw` relation
  --> <input>:1:17
   |
 1 | acyclic [domain(po)] ; rf as Order
   |                 ^^"
    );
}

//! Scheduling parity: adaptive dispatch must not change what a sweep
//! computes.
//!
//! The contract under test: weight-ordered dispatch, unit pre-splitting,
//! budget-stop work preservation and lease-based cross-shard stealing are
//! pure *scheduling* choices — a split or stolen run produces suites
//! byte-identical (signatures, counts, histograms, enumeration totals) to
//! the static FIFO dispatch of `sched: false`, and a shard that dies
//! holding leases only costs latency, never coverage.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

use tm_weak_memory::models::{MemoryModel, ScModel};
use tm_weak_memory::obs::Obs;
use tm_weak_memory::sweep::{
    merge_sharded, reap_stale, run_sweep, LeaseManager, SweepJob, SweepMode, SweepOptions,
    SweepStatus,
};
use tm_weak_memory::synth::{
    canonical_signature, work_units, CanonSig, SuiteReport, Symmetry, SynthConfig,
};

/// A fresh scratch directory under the system temp dir; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let mut p = std::env::temp_dir();
        p.push(format!("tm-sched-parity-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        Scratch(p)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The trimmed |E| = 4 study space: big enough for a real unit frontier
/// with splittable units and uneven weights, small enough for debug-profile
/// test runs.
fn trimmed_config() -> SynthConfig {
    SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 2,
        max_locs: 2,
        ..SynthConfig::x86(4)
    }
}

fn suites_job<'a>(
    tm: &'a dyn MemoryModel,
    base: &'a dyn MemoryModel,
    config: &'a SynthConfig,
) -> SweepJob<'a> {
    SweepJob {
        model: tm,
        baseline: Some(base),
        reference: None,
        mode: SweepMode::Suites,
        config,
        events: config.max_events,
        symmetry: Symmetry::Full,
    }
}

/// Everything the parity contract promises to preserve: canonical and
/// structural signatures of both suites, the transaction histogram, and
/// the enumeration total.
type SuiteProfile = (Vec<(CanonSig, String)>, Vec<String>, Vec<usize>, usize);

fn profile(report: &SuiteReport) -> SuiteProfile {
    let forbid = report
        .forbid
        .iter()
        .map(|t| (canonical_signature(&t.execution), t.execution.signature()))
        .collect();
    let allow = report
        .allow
        .iter()
        .map(|t| t.execution.signature())
        .collect();
    (
        forbid,
        allow,
        report.forbid_txn_histogram(),
        report.enumerated,
    )
}

/// Forcing every splittable unit apart with `--max-unit-weight 1` must not
/// change the suites, the visit totals, or the per-execution verdicts —
/// only how the work was diced.
#[test]
fn forced_presplit_run_matches_unscheduled_run() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let off_dir = Scratch::new("presplit-off");
    let mut off_opts = SweepOptions::new(off_dir.path());
    off_opts.sched = false;
    let off = run_sweep(&job, &off_opts).expect("sched-off run");
    assert_eq!(off.status, SweepStatus::Complete);
    let off_profile = profile(off.suites.as_ref().expect("suites mode"));

    let on_dir = Scratch::new("presplit-on");
    let obs = Obs::disabled();
    let mut on_opts = SweepOptions::new(on_dir.path());
    on_opts.max_unit_weight = Some(1);
    on_opts.obs = obs.clone();
    let on = run_sweep(&job, &on_opts).expect("sched-on run");
    assert_eq!(on.status, SweepStatus::Complete);

    assert!(
        obs.counter("sweep.sched.presplit").get() > 0,
        "a weight bound of 1 must split something"
    );
    assert!(
        on.total_units > off.total_units,
        "splitting must refine the unit frontier ({} vs {})",
        on.total_units,
        off.total_units
    );
    assert_eq!(on.visited, off.visited);
    assert_eq!(on.weighted_visited, off.weighted_visited);
    assert_eq!(
        profile(on.suites.as_ref().expect("suites mode")),
        off_profile,
        "split suites must be identical to the unsplit run"
    );
}

/// A budget stop mid-run under maximal splitting, then a resume, lands on
/// the same suites — and every child unit banked before the stop is reused,
/// not re-run.
#[test]
fn budget_stop_with_splits_resumes_to_identical_suites() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let clean_dir = Scratch::new("budget-clean");
    let mut clean_opts = SweepOptions::new(clean_dir.path());
    clean_opts.sched = false;
    let clean = run_sweep(&job, &clean_opts).expect("clean run");
    let clean_profile = profile(clean.suites.as_ref().expect("suites mode"));

    let dir = Scratch::new("budget");
    let mut opts = SweepOptions::new(dir.path());
    opts.max_unit_weight = Some(1);
    opts.budget = Some(Duration::from_millis(25));
    let stopped = run_sweep(&job, &opts).expect("budget run");

    let mut opts = SweepOptions::new(dir.path());
    opts.max_unit_weight = Some(1);
    opts.resume = true;
    let resumed = run_sweep(&job, &opts).expect("resumed run");
    assert_eq!(resumed.status, SweepStatus::Complete);
    assert_eq!(
        resumed.reused_units, stopped.completed_units,
        "every unit banked before the budget stop must be reused"
    );
    assert_eq!(
        profile(resumed.suites.as_ref().expect("suites mode")),
        clean_profile
    );
}

/// Two shards claiming from a shared lease directory — no static `id % M`
/// slice at all — must between them complete every unit exactly once, and
/// merge to the unscheduled unsharded result.
#[test]
fn lease_claimed_shards_merge_to_the_unsharded_result() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());

    let clean_dir = Scratch::new("lease-clean");
    let mut clean_opts = SweepOptions::new(clean_dir.path());
    clean_opts.sched = false;
    let clean = run_sweep(&suites_job(&tm, &base, &config), &clean_opts).expect("clean run");
    let clean_profile = profile(clean.suites.as_ref().expect("suites mode"));

    let dir0 = Scratch::new("lease-0");
    let dir1 = Scratch::new("lease-1");
    let lease_root = Scratch::new("lease-dir");
    let obs = Obs::disabled();
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = [(0u32, dir0.path()), (1u32, dir1.path())]
            .into_iter()
            .map(|(i, checkpoint)| {
                let (config, lease, obs) = (&config, lease_root.path(), obs.clone());
                let (tm, base) = (&tm, &base);
                scope.spawn(move || {
                    let mut opts = SweepOptions::new(checkpoint);
                    opts.shard = Some((i, 2));
                    opts.lease_dir = Some(lease);
                    // One worker per shard: contention comes from the two
                    // processes-worth of claimants, not intra-shard racing.
                    opts.threads = Some(1);
                    opts.obs = obs;
                    run_sweep(&suites_job(tm, base, config), &opts).expect("lease shard run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for outcome in &outcomes {
        assert_eq!(outcome.status, SweepStatus::Complete);
        assert!(
            outcome.suites.is_none(),
            "a lease shard must not assemble suites on its own"
        );
    }
    assert!(
        obs.counter("sweep.lease.claims").get() > 0,
        "lease shards must claim their units"
    );

    let merged = merge_sharded(
        &suites_job(&tm, &base, &config),
        &[dir0.path(), dir1.path()],
    )
    .expect("merge");
    assert_eq!(merged.status, SweepStatus::Complete);
    assert_eq!(merged.visited, clean.visited);
    assert_eq!(
        profile(merged.suites.as_ref().expect("suites mode")),
        clean_profile,
        "lease-claimed shards must merge to the unsharded suites"
    );
}

/// A shard that died holding a lease (simulated by an abandoned, never
/// refreshed lease file) blocks that unit only until the lease goes stale:
/// once reaped, a live shard claims the unit and the sweep completes with
/// full coverage.
#[test]
fn stale_lease_is_reaped_and_the_unit_stolen() {
    let config = trimmed_config();
    let (tm, base) = (ScModel::tsc(), ScModel::sc());
    let job = suites_job(&tm, &base, &config);

    let dir = Scratch::new("steal");
    let lease_root = Scratch::new("steal-leases");

    // Shard 9 "died" right after claiming the first root unit: the lease
    // file exists but nobody will ever refresh or complete it.
    let units = work_units(&config, config.max_events, Symmetry::Full);
    let dead_unit = units[0].stable_id(&config, config.max_events);
    let dead = LeaseManager::new(lease_root.path(), 9, 0).expect("dead shard manager");
    assert!(dead.try_claim(dead_unit).expect("dead claim"));

    // The supervisor stand-in: reap leases older than 100ms, twice a
    // second, until the run ends.
    let stop = AtomicBool::new(false);
    let reaped_total = AtomicUsize::new(0);
    let outcome = std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(50));
                if let Ok(n) = reap_stale(&lease_root.path(), Duration::from_millis(100)) {
                    reaped_total.fetch_add(n, Ordering::Relaxed);
                }
            }
        });
        // Keep units whole so the frontier is exactly the root units and
        // the abandoned lease is guaranteed to be contested.
        let mut opts = SweepOptions::new(dir.path());
        opts.shard = Some((0, 1));
        opts.lease_dir = Some(lease_root.path());
        opts.max_unit_weight = Some(u64::MAX);
        opts.threads = Some(1);
        let outcome = run_sweep(&job, &opts).expect("stealing run");
        stop.store(true, Ordering::Relaxed);
        outcome
    });

    assert_eq!(outcome.status, SweepStatus::Complete);
    assert_eq!(
        outcome.completed_units, outcome.total_units,
        "the stolen unit must be completed, not skipped"
    );
    assert_eq!(outcome.total_units, units.len());
    assert!(
        reaped_total.load(Ordering::Relaxed) > 0,
        "the abandoned lease must have been reaped"
    );
}

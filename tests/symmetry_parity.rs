//! Exactness of symmetry-reduced enumeration against the full sweep.
//!
//! The reduced enumerator ([`enumerate_reduced`]) must visit **exactly one
//! representative per isomorphism class** under thread renaming (within the
//! sorted-partition discipline) and location renaming, and report each
//! representative's in-space orbit size. These tests pin that contract by
//! brute force: the full enumeration ([`enumerate_exact`]) is grouped by
//! canonical signature, and the reduced run must produce one execution per
//! group whose orbit equals the group's cardinality — so representatives ×
//! orbits re-covers the full space with no class missed, duplicated, or
//! miscounted. Suite synthesis is pinned the same way: Forbid/Allow suites
//! are invariant under renaming, so `--symmetry on` and `off` must build
//! byte-identical suites while the reduced sweep visits fewer executions.

use std::collections::HashMap;
use std::sync::Mutex;

use tm_weak_memory::models::Target;
use tm_weak_memory::synth::{
    canonical_signature, enumerate_exact, enumerate_reduced, synthesise_suites_with, CanonSig,
    SuiteReport, Symmetry, SynthConfig,
};

/// Full-space class census: canonical signature → number of enumerated
/// executions in that class.
fn full_census(config: &SynthConfig, n: usize) -> (usize, HashMap<CanonSig, u64>) {
    let census = Mutex::new(HashMap::new());
    let total = enumerate_exact(config, n, |exec| {
        let sig = canonical_signature(exec);
        *census.lock().unwrap().entry(sig).or_insert(0u64) += 1;
    });
    (total, census.into_inner().unwrap())
}

fn assert_reduction_is_exact(config: &SynthConfig, n: usize) {
    let (total, census) = full_census(config, n);
    assert!(total > 0, "empty space, the pin would be vacuous");

    let reps = Mutex::new(Vec::new());
    let tally = enumerate_reduced(config, n, |exec, orbit| {
        reps.lock()
            .unwrap()
            .push((canonical_signature(exec), orbit));
    });
    let reps = reps.into_inner().unwrap();

    // One representative per class, each carrying its class's exact size.
    assert_eq!(
        reps.len(),
        census.len(),
        "|E| = {n}: representative count must equal the class count"
    );
    for (sig, orbit) in &reps {
        assert_eq!(
            census.get(sig),
            Some(orbit),
            "|E| = {n}: orbit of {sig} disagrees with the full-space census"
        );
    }
    // And the tallies account for the whole space.
    assert_eq!(tally.representatives, reps.len());
    assert_eq!(
        tally.weighted, total as u64,
        "|E| = {n}: orbit-weighted total must re-cover the full enumeration"
    );
}

#[test]
fn reduction_is_exact_on_the_trimmed_two_thread_space() {
    let cfg = SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 2,
        max_locs: 2,
        ..SynthConfig::x86(3)
    };
    for n in 2..=3 {
        assert_reduction_is_exact(&cfg, n);
    }
}

#[test]
fn reduction_is_exact_on_a_three_thread_space() {
    // Three threads of equal size are where the renaming group is
    // non-trivial; this is the space the |E| = 7 tables lean on.
    let cfg = SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 3,
        max_locs: 2,
        ..SynthConfig::x86(3)
    };
    assert_reduction_is_exact(&cfg, 3);
}

#[test]
fn reduction_is_exact_on_the_full_x86_space() {
    assert_reduction_is_exact(&SynthConfig::x86(3), 3);
}

#[test]
fn reduction_is_exact_on_the_power_space() {
    let mut cfg = SynthConfig::power(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.fences = vec![];
    assert_reduction_is_exact(&cfg, 3);
}

fn signatures(report: &SuiteReport) -> (Vec<CanonSig>, Vec<CanonSig>) {
    let sigs = |tests: &[tm_weak_memory::synth::SynthesisedTest]| {
        let mut sigs: Vec<CanonSig> = tests
            .iter()
            .map(|t| canonical_signature(&t.execution))
            .collect();
        sigs.sort();
        sigs
    };
    (sigs(&report.forbid), sigs(&report.allow))
}

/// Pins `--symmetry on` and `off` to identical suites and exact orbit
/// accounting; returns `(reduced, full)` enumeration counts so callers can
/// assert strict reduction where the space actually has symmetric
/// partitions (a 2-thread odd-|E| space has none, so equality is correct
/// there).
fn assert_suites_invariant(target: Target, cfg: &SynthConfig, events: usize) -> (usize, usize) {
    let tm_model = target.model();
    let baseline = target.baseline().model();
    let full = synthesise_suites_with(
        tm_model.as_ref(),
        baseline.as_ref(),
        cfg,
        events,
        Symmetry::Full,
    );
    let reduced = synthesise_suites_with(
        tm_model.as_ref(),
        baseline.as_ref(),
        cfg,
        events,
        Symmetry::Reduced,
    );
    assert!(
        reduced.enumerated <= full.enumerated,
        "{target}: reduction visited more executions ({} vs {})",
        reduced.enumerated,
        full.enumerated
    );
    assert_eq!(
        reduced.effective, full.enumerated as u64,
        "{target}: orbit weights must cover the full space"
    );
    assert_eq!(
        signatures(&full),
        signatures(&reduced),
        "{target}: suites diverged between --symmetry off and on at |E| = {events}"
    );
    assert_eq!(
        full.forbid_txn_histogram(),
        reduced.forbid_txn_histogram(),
        "{target}: transaction histograms diverged"
    );
    (reduced.enumerated, full.enumerated)
}

#[test]
fn suites_are_identical_on_and_off_x86_trimmed() {
    let cfg = SynthConfig {
        dependencies: false,
        rmws: false,
        fences: vec![],
        max_threads: 2,
        max_locs: 2,
        ..SynthConfig::x86(4)
    };
    assert_suites_invariant(Target::X86Tm, &cfg, 3);
    // At four events the [2, 2] partition is symmetric, so the reduced
    // sweep must strictly undercut the full one.
    let (reduced, full) = assert_suites_invariant(Target::X86Tm, &cfg, 4);
    assert!(
        reduced < full,
        "reduction skipped nothing on a symmetric space ({reduced} vs {full})"
    );
}

#[test]
fn suites_are_identical_on_and_off_power() {
    let mut cfg = SynthConfig::power(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    cfg.fences = vec![];
    assert_suites_invariant(Target::PowerTm, &cfg, 3);
}

#[test]
fn suites_are_identical_on_and_off_cpp() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.max_threads = 2;
    cfg.max_locs = 2;
    assert_suites_invariant(Target::CppTm, &cfg, 3);
}

/// The paper pin survives reduction: the x86+TM |E| = 3 Forbid suite still
/// has exactly the 4 tests of Table 1 when only representatives are
/// enumerated.
#[test]
fn x86_forbid_count_survives_reduction() {
    let target = Target::X86Tm;
    let report = synthesise_suites_with(
        target.model().as_ref(),
        target.baseline().model().as_ref(),
        &SynthConfig::x86(3),
        3,
        Symmetry::Reduced,
    );
    assert_eq!(report.forbid.len(), 4, "Table 1: x86 |E|=3 Forbid = 4");
    assert_eq!(report.forbid_txn_histogram()[1], 4);
}

//! One test per headline claim of the paper, each phrased the way the paper
//! states it. These are the repository's "reproduction badges".

use tm_weak_memory::exec::catalog;
use tm_weak_memory::litmus::Arch;
use tm_weak_memory::metatheory::{
    check_lock_elision, check_monotonicity, check_theorem_7_2, check_theorem_7_3,
};
use tm_weak_memory::models::{
    isolation, Armv8Model, CppModel, MemoryModel, PowerModel, ScModel, X86Model,
};
use tm_weak_memory::synth::SynthConfig;

/// §1.1 / §8.3: "lock elision is unsound under ARMv8" — the automated search
/// rediscovers Example 1.1, and the proposed DMB repair removes the witness.
#[test]
fn claim_lock_elision_is_unsound_on_armv8_and_fixable_with_a_dmb() {
    let broken = check_lock_elision(Arch::Armv8, false);
    assert!(!broken.sound());
    let fixed = check_lock_elision(Arch::Armv8, true);
    assert!(fixed.sound());
    // x86 lock elision shows no witness in the same family.
    assert!(check_lock_elision(Arch::X86, false).sound());
}

/// §5.2: the three Power executions that motivated the TM axioms are
/// forbidden by the transactional model yet allowed by the baseline, and the
/// empirically-observed one-transaction IRIW variant stays allowed.
#[test]
fn claim_power_tm_axioms_forbid_the_motivating_executions() {
    let tm = PowerModel::tm();
    let base = PowerModel::baseline();
    for exec in [
        catalog::power_wrc_tprop1(),
        catalog::power_wrc_tprop2(),
        catalog::power_iriw_two_txns(),
    ] {
        assert!(base.is_consistent(&exec));
        assert!(!tm.is_consistent(&exec));
    }
    assert!(tm.is_consistent(&catalog::power_iriw_one_txn()));
    // Remark 5.1: the ambiguous read-only-transaction executions stay
    // permitted (the model errs on the side of caution).
    assert!(tm.is_consistent(&catalog::remark_5_1_first()));
    assert!(tm.is_consistent(&catalog::remark_5_1_second()));
}

/// §8.1: transaction coalescing is unsound on Power (and ARMv8) because of
/// RMWs, but monotonicity holds for x86 at small bounds.
#[test]
fn claim_monotonicity_fails_exactly_where_the_paper_says() {
    assert!(!check_monotonicity(&PowerModel::tm(), &SynthConfig::power(2), 2).holds());
    assert!(!check_monotonicity(&Armv8Model::tm(), &SynthConfig::armv8(2), 2).holds());
    assert!(check_monotonicity(&X86Model::tm(), &SynthConfig::x86(3), 3).holds());
}

/// §3.3 / Fig. 3: the four executions separating weak from strong isolation
/// do exactly that, and every hardware TM model enforces strong isolation.
#[test]
fn claim_fig3_separates_weak_and_strong_isolation() {
    for which in ['a', 'b', 'c', 'd'] {
        let e = catalog::fig3(which);
        assert!(ScModel::sc().is_consistent(&e));
        assert!(isolation::weak_isolation(&e));
        assert!(!isolation::strong_isolation(&e));
        for model in [
            Box::new(X86Model::tm()) as Box<dyn MemoryModel>,
            Box::new(PowerModel::tm()),
            Box::new(Armv8Model::tm()),
        ] {
            assert!(!model.is_consistent(&e));
        }
    }
}

/// §7: Theorems 7.2 and 7.3 hold on every bounded instance, and the §9
/// comparison execution shows our Power model is strong enough to validate
/// the C++ mapping where Dongol et al.'s is not.
#[test]
fn claim_cpp_theorems_hold_and_the_dongol_example_is_forbidden() {
    let mut cfg = SynthConfig::cpp(3);
    cfg.read_annots.truncate(2);
    cfg.write_annots.truncate(2);
    assert!(check_theorem_7_2(&cfg, 3).holds());
    assert!(check_theorem_7_3(&cfg, 3).holds());
    assert!(!CppModel::tm().is_consistent(&catalog::dongol_mp_txn()));
    assert!(!PowerModel::tm().is_consistent(&catalog::dongol_mp_txn()));
}

/// §3.4: TxnOrder subsumes StrongIsol — TSC forbids everything strong
/// isolation forbids on the catalog.
#[test]
fn claim_tsc_subsumes_strong_isolation() {
    for exec in [
        catalog::fig2(),
        catalog::fig3('a'),
        catalog::fig3('b'),
        catalog::fig3('c'),
        catalog::fig3('d'),
        catalog::sb_txn(),
        catalog::lb_txn(),
    ] {
        if !isolation::strong_isolation(&exec) {
            assert!(!ScModel::tsc().is_consistent(&exec));
        }
    }
}
